"""Sharded query execution: one monitoring server, N worker processes.

:class:`ShardedMonitoringServer` keeps the exact public API of
:class:`~repro.core.server.MonitoringServer` — ingestion, ``tick()``,
``result_of()`` — but partitions the monitoring work across worker
processes (:mod:`repro.core.worker`), so the per-tick monitoring work runs
on every core instead of one.  Two partitioning modes exist:

* ``partitioning="replica"`` (the default): every worker holds a full
  network replica and the continuous *queries* are hash-partitioned.
* ``partitioning="graph"``: the *network* is partitioned into contiguous
  region blocks (a BFS grower over the CSR adjacency,
  :func:`~repro.network.csr.grow_partitions`); each worker holds only its
  block plus a one-hop boundary halo, queries are owned by the shard
  containing their edge, and searches that spill over a partition cut run
  through the coordinator's cross-shard expansion protocol (see the
  *Graph partitioning* section below).

The replica-mode pieces:

* **State shipping.**  Each worker gets a pickled replica of the road
  network (weight listeners are dropped in transit) and the current object
  placements; from then on it stays in sync by applying the same normalized
  update batches the parent applies.
* **Shared CSR snapshot.**  The flat-array kernel columns are exported once
  per topology version through :class:`~repro.network.csr.SharedCSR` and
  attached by every worker — either as zero-copy numpy views (the dominant
  read-only structure exists once in memory) or, by default, as private
  list copies made once per topology version (fastest Python-loop access).
  Weight deltas reach workers both through the shared arrays (the parent
  patches them in place before fanning a tick out) and through the edge
  updates broadcast in every batch, so both modes stay fresh without
  rebuilds.
* **Fan-out / merge.**  ``tick()`` sends every shard the timestamp's object
  and edge updates plus the query updates it owns, then merges the per-shard
  :class:`~repro.core.base.TimestepReport` replies — changed-query sets and
  work counters — and folds the changed results into one cache serving
  ``result_of()`` / ``results()``.
* **Topology bumps.**  When the network's ``topology_version`` changes, the
  next tick re-ships everything: workers are respawned with the current
  state and a freshly exported snapshot.

Graph partitioning (``partitioning="graph"``) changes what each worker
holds, not the protocol skeleton: worker *i* receives only the subnetwork
induced by its block plus halo (with its own per-shard
:class:`~repro.network.csr.SharedCSR` export), the objects on its local
edges, and the queries whose edge lies in its block.  A worker escalates
any query whose expansion reaches a halo node — the local answer can no
longer be trusted — and the coordinator takes those *boundary queries*
over, evaluating them with exact distributed expansions: it asks the
owning shard for a fresh expansion, collects the settled halo nodes as
``(node, distance)`` *frontier continuations*, and forwards each improving
continuation to the shard owning that node as a seeded resume request
(:func:`~repro.core.search.expand_knn` with ``seed_nodes``), iterating
until the global bound closes.  Every partial expansion performs the same
float operations a fresh single-process expansion would, so merged results
are byte-identical to a from-scratch evaluation.

Example::

    from repro import MonitoringServer, city_network

    network = city_network(400, seed=7)
    with MonitoringServer(network, algorithm="ima", workers=4) as server:
        server.add_objects_at([(i, 50.0 * i, 80.0) for i in range(32)])
        server.add_query_at(1_000_000, x=100.0, y=100.0, k=4)
        report = server.tick()
        print(server.result_of(1_000_000).neighbors)
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.core.base import MonitorBase, TimestepReport
from repro.core.events import ObjectUpdate, QueryUpdate, UpdateBatch, apply_batch
from repro.core.queries import QuerySpec, merge_aggregate
from repro.core.results import KnnResult
from repro.core.server import ALGORITHMS, MonitoringServer
from repro.core.worker import ShardInit, run_shard_worker, shard_of
from repro.exceptions import (
    MonitoringError,
    RecoveryError,
    ServerFailedError,
    UnknownQueryError,
)
from repro.network.csr import SharedCSR, csr_snapshot, grow_partitions, partition_block
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.network.kernels import DEFAULT_KERNEL

#: The two supported partitioning modes of :class:`ShardedMonitoringServer`.
PARTITIONING_MODES = ("replica", "graph")


def default_start_method() -> str:
    """The preferred multiprocessing start method on this platform.

    ``fork`` where available (fast spawn, cheap state shipping), ``spawn``
    otherwise; both are supported — every shipped object pickles cleanly.

    Example::

        ShardedMonitoringServer(network, workers=4,
                                start_method=default_start_method())
    """
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass
class _Shard:
    """Parent-side handle of one worker process."""

    shard_id: int
    process: multiprocessing.Process
    conn: object  # multiprocessing.connection.Connection


def _cleanup(shards: List[_Shard], shared_list: List[SharedCSR]) -> None:
    """Best-effort teardown used by close() and the GC finalizer.

    *shared_list* holds every live shared-memory export: one entry in
    replica mode, one per shard in graph-partitioned mode.
    """
    for shard in shards:
        try:
            shard.conn.send(("stop",))
        except (OSError, ValueError, BrokenPipeError):
            pass
    for shard in shards:
        shard.process.join(timeout=5.0)
        if shard.process.is_alive():  # pragma: no cover - stuck worker
            shard.process.terminate()
            shard.process.join(timeout=1.0)
        try:
            shard.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    for shared in shared_list:
        # Close-then-unlink, matching the documented SharedCSR lifecycle:
        # close() first restores the parent's adopted snapshot columns to
        # private lists and unmaps the block, so the subsequent unlink never
        # removes a name while this process still holds live views (on some
        # platforms that defers the removal and leaks the mapping).
        shared.close()
        shared.unlink()


def _extract_subnetwork(
    network: RoadNetwork,
    members: Set[int],
    edge_ids: Set[int],
) -> RoadNetwork:
    """Build the subnetwork induced by *members* nodes and *edge_ids* edges.

    Nodes and edges are inserted in the **full network's iteration order**,
    so the subnetwork's dense CSR renumbering is a filtered subsequence of
    the full network's.  Relative node order decides heap tie-breaks in the
    settle loop (ties pop by dense index), so preserving it makes a
    contained search settle in exactly the same order — and produce exactly
    the same floats — as the single-process server.
    """
    sub = RoadNetwork()
    for node_id in network.node_ids():
        if node_id in members:
            node = network.node(node_id)
            sub.add_node(node_id, node.x, node.y)
    for edge_id in network.edge_ids():
        if edge_id in edge_ids:
            edge = network.edge(edge_id)
            new_edge = sub.add_edge(
                edge.edge_id, edge.start, edge.end, edge.weight, edge.oneway
            )
            new_edge.base_weight = edge.base_weight
    return sub


class ShardedMonitoringServer(MonitoringServer):
    """A :class:`MonitoringServer` that executes queries on worker processes.

    Construct it directly, or — equivalently — via
    ``MonitoringServer(network, workers=N)`` with ``N > 1``.  The whole
    ingestion surface (``add_object`` … ``apply_updates``) is inherited
    unchanged; only execution is different: ``tick()`` fans the timestamp
    out to the shards and merges their reports, and ``result_of()`` serves
    from the merged result cache.  Call :meth:`close` (or use the server as
    a context manager) to stop the workers and release the shared-memory
    snapshot.

    Example::

        server = ShardedMonitoringServer(network, algorithm="gma", workers=2)
        try:
            server.add_object_at(1, x=120.0, y=80.0)
            server.add_query_at(100, x=100.0, y=100.0, k=2)
            server.tick()
            print(server.result_of(100).neighbors)
        finally:
            server.close()
    """

    def __init__(
        self,
        network: RoadNetwork,
        algorithm: Union[str, MonitorBase] = "ima",
        edge_table: Optional[EdgeTable] = None,
        kernel: str = DEFAULT_KERNEL,
        *,
        workers: int = 2,
        partitioning: str = "replica",
        start_method: Optional[str] = None,
        zero_copy: bool = False,
        recv_timeout: Optional[float] = 120.0,
    ) -> None:
        """Create the sharded server and spawn its worker processes.

        Args:
            network: the road network (the parent stays its single writer).
            algorithm: ``"ovh"``, ``"ima"`` or ``"gma"``; monitor *instances*
                are rejected because monitors live in the workers.
            edge_table: optionally a pre-populated edge table; its objects
                are shipped to every worker as the initial placements.
            kernel: any registered kernel name (see
                :mod:`repro.network.kernels`) for the workers' monitors;
                ``"csr"`` by default.
            workers: number of worker processes (>= 1).
            partitioning: ``"replica"`` (default) hash-partitions queries
                over full network replicas; ``"graph"`` partitions the
                *network* into region blocks with a one-hop halo, owns each
                query by the shard containing its edge, and evaluates
                boundary-crossing queries through the coordinator's
                cross-shard expansion protocol.  Graph mode may spawn fewer
                shards than *workers* when the network has fewer nodes.
            start_method: multiprocessing start method; defaults to
                :func:`default_start_method`.
            zero_copy: when True, workers keep the shared CSR snapshot as
                zero-copy numpy views — one copy of the kernel columns in
                the whole fleet, at the cost of slower per-element access
                in the Python hot loop.  The default (False) has each
                worker copy the columns into private lists at attach time
                (once per topology version) and stay fresh through the
                weight deltas broadcast in every batch: ~30 % faster ticks,
                one column copy per worker.
            recv_timeout: seconds to wait for any single worker reply before
                declaring the shard stuck and failing the server with a
                :class:`MonitoringError` (the 5s join cap in teardown has
                the same role).  ``None`` disables the deadline and restores
                the old block-forever behaviour.
        """
        if workers < 1:
            raise MonitoringError(f"workers must be >= 1, got {workers}")
        if partitioning not in PARTITIONING_MODES:
            raise MonitoringError(
                f"partitioning must be one of {PARTITIONING_MODES}, "
                f"got {partitioning!r}"
            )
        if recv_timeout is not None and recv_timeout <= 0:
            raise MonitoringError(f"recv_timeout must be positive, got {recv_timeout}")
        self._num_workers = workers
        self._num_shards = workers
        self._partitioning = partitioning
        self._zero_copy = zero_copy
        self._start_method = start_method or default_start_method()
        self._recv_timeout = recv_timeout
        self._closed = False
        self._failed: Optional[str] = None
        self._shards: List[_Shard] = []
        self._shared: Optional[SharedCSR] = None
        self._shared_list: List[SharedCSR] = []
        self._merged_results: Dict[int, KnnResult] = {}
        self._finalizer: Optional[weakref.finalize] = None
        # Graph-partitioning state (empty/no-op in replica mode).
        self._assignment: Dict[int, int] = {}
        self._subnetworks: List[RoadNetwork] = []
        self._shard_edge_ids: List[Set[int]] = []
        self._shard_halos: List[FrozenSet[int]] = []
        self._query_owner: Dict[int, Optional[int]] = {}
        self._boundary_queries: Set[int] = set()
        self._divergent_queries: Set[int] = set()
        self._boundary_refresh_needed = False
        super().__init__(network, algorithm, edge_table, kernel)
        self._spawn_workers(initial_queries={})

    def _make_monitor(
        self, algorithm: Union[str, MonitorBase], kernel: str
    ) -> Optional[MonitorBase]:
        """Validate and record the worker algorithm; no in-process monitor."""
        if isinstance(algorithm, MonitorBase):
            raise MonitoringError(
                "a sharded server needs an algorithm *name* (its monitors "
                "live in worker processes); got a monitor instance"
            )
        self._algorithm_key = self._resolve_algorithm_key(algorithm)
        self._kernel = kernel
        return None

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Number of worker processes serving this server's queries."""
        return self._num_workers

    @property
    def partitioning(self) -> str:
        """The partitioning mode: ``"replica"`` or ``"graph"``."""
        return self._partitioning

    @property
    def shards(self) -> int:
        """Actual shard count: ``workers`` in replica mode; in graph mode
        possibly fewer (never more region blocks than network nodes)."""
        return self._num_shards

    def partition_assignment(self) -> Dict[int, int]:
        """node id -> owning shard index (empty in replica mode).

        Exposed for tests that pin queries near partition cuts and for
        operational introspection of the block layout.

        Example::

            cuts = {n for n in server.partition_assignment()
                    if any(server.partition_assignment().get(m) !=
                           server.partition_assignment()[n]
                           for m in neighbors(n))}
        """
        return dict(self._assignment)

    def boundary_query_ids(self) -> FrozenSet[int]:
        """Ids of queries currently evaluated by the coordinator's
        cross-shard protocol (always empty in replica mode).

        A query becomes *boundary* when its owning shard escalates it (its
        expansion reached a halo node), when it moves across a partition
        cut, or — always — when it is an aggregate query (its aggregation
        points may live on other shards).  It stays boundary until it
        terminates or the fleet resyncs after a topology bump.
        """
        return frozenset(self._boundary_queries)

    def divergent_query_ids(self) -> FrozenSet[int]:
        """Ids of queries that were *ever* boundary-evaluated (sticky).

        Boundary evaluation recomputes a query's answer with fresh
        expansions; for IMA the incrementally maintained single-process
        answer can differ from a fresh one in the last float ULP, so strict
        byte-identity comparisons against a single-process run must carve
        these out (the differential harness still holds them to the oracle
        tolerance).  Unlike :meth:`boundary_query_ids` this set survives
        resyncs — once fresh-evaluated, always potentially divergent.
        """
        return frozenset(self._divergent_queries)

    @property
    def algorithm_name(self) -> str:
        """Short name of the algorithm the workers run ("OVH"/"IMA"/"GMA")."""
        return ALGORITHMS[self._algorithm_key].name

    @property
    def monitor(self) -> MonitorBase:
        """Unavailable on a sharded server — monitors live in the workers.

        Raises AttributeError (not MonitoringError) so ``hasattr`` /
        ``getattr(..., default)`` probes behave normally.
        """
        raise AttributeError(
            "a sharded server has no in-process monitor; use result_of()/"
            "results(), which merge the workers' answers"
        )

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_workers(
        self,
        initial_queries: Dict[int, tuple],
        monitor_blobs: Optional[List[bytes]] = None,
    ) -> None:
        """Export the snapshot, ship the state, start one process per shard."""
        try:
            self._spawn_workers_inner(initial_queries, monitor_blobs)
        except BaseException:
            shards, shared_list = self._shards, self._shared_list
            self._shards, self._shared, self._shared_list = [], None, []
            _cleanup(shards, shared_list)
            raise

    def _spawn_workers_inner(
        self,
        initial_queries: Dict[int, tuple],
        monitor_blobs: Optional[List[bytes]] = None,
    ) -> None:
        """The actual spawn sequence (:meth:`_spawn_workers` adds cleanup).

        With *monitor_blobs* (one pickled monitor per shard, from
        :meth:`snapshot_state`), each worker resumes from its blob instead
        of building a fresh replica — preserving the monitors' exact float
        history, which is what makes restored results byte-identical.

        In graph mode each shard ships its own block+halo subnetwork and a
        per-shard :class:`SharedCSR` export; *initial_queries* are routed by
        the shard owning their edge (aggregate queries go straight to the
        coordinator's boundary set), and any registration-time escalations
        reported in the ready payloads are queued for re-evaluation on the
        next tick.
        """
        context = multiprocessing.get_context(self._start_method)
        graph_mode = self._partitioning == "graph"
        per_shard_inits: List[ShardInit]
        if graph_mode:
            per_shard_inits = self._build_graph_shard_inits(
                initial_queries, monitor_blobs
            )
        else:
            self._num_shards = self._num_workers
            self._shared = SharedCSR(csr_snapshot(self._network))
            self._shared_list = [self._shared]
            self._exported_topology_version = self._network.topology_version
            # One serialization of the network for the whole fleet; each
            # worker unpickles its own replica (listeners drop out in
            # transit).  A restore ships per-shard monitor blobs instead,
            # which embed each worker's own replica.
            network_payload = (
                None
                if monitor_blobs is not None
                else pickle.dumps(self._network, protocol=pickle.HIGHEST_PROTOCOL)
            )
            objects = (
                {} if monitor_blobs is not None else dict(self._edge_table.all_objects())
            )
            per_shard_queries: List[Dict[int, tuple]] = [
                {} for _ in range(self._num_workers)
            ]
            for query_id, assignment in initial_queries.items():
                per_shard_queries[shard_of(query_id, self._num_workers)][
                    query_id
                ] = assignment
            per_shard_inits = [
                ShardInit(
                    shard_id=shard_id,
                    algorithm=self._algorithm_key,
                    kernel=self._kernel,
                    network_blob=network_payload,
                    objects=objects,
                    queries=per_shard_queries[shard_id],
                    csr_handle=self._shared.handle,
                    zero_copy=self._zero_copy,
                    monitor_blob=(
                        monitor_blobs[shard_id] if monitor_blobs is not None else None
                    ),
                )
                for shard_id in range(self._num_workers)
            ]
        self._shards = []
        for init in per_shard_inits:
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=run_shard_worker,
                args=(child_conn, init),
                name=f"repro-shard-{init.shard_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._shards.append(_Shard(init.shard_id, process, parent_conn))
        for shard in self._shards:
            kind, payload = self._recv(shard)
            if kind != "ready":  # pragma: no cover - protocol violation
                raise MonitoringError(
                    f"shard {shard.shard_id} sent {kind!r} instead of 'ready'"
                )
            results, escalated = payload
            self._merged_results.update(results)
            for query_id in escalated:
                self._query_owner[query_id] = None
                self._boundary_queries.add(query_id)
                self._divergent_queries.add(query_id)
                self._boundary_refresh_needed = True
        if self._finalizer is not None:
            self._finalizer.detach()
        self._finalizer = weakref.finalize(
            self, _cleanup, self._shards, self._shared_list
        )

    def _build_graph_shard_inits(
        self,
        initial_queries: Dict[int, tuple],
        monitor_blobs: Optional[List[bytes]],
    ) -> List[ShardInit]:
        """Partition the network and assemble one graph-mode init per shard.

        Recomputes the BFS-grown block assignment from the current network
        (deterministic, so a restored or resynced fleet lands on the same
        layout), extracts each shard's block+halo subnetwork in
        full-network iteration order, and exports one shared CSR snapshot
        per shard.
        """
        full_csr = csr_snapshot(self._network)
        self._assignment = grow_partitions(full_csr, self._num_workers)
        parts = (max(self._assignment.values()) + 1) if self._assignment else 1
        self._num_shards = parts
        self._exported_topology_version = self._network.topology_version
        if monitor_blobs is not None and len(monitor_blobs) != parts:
            raise RecoveryError(
                f"graph-partitioned snapshot holds {len(monitor_blobs)} shard "
                f"blobs but the network partitions into {parts} shards"
            )
        self._subnetworks = []
        self._shard_edge_ids = []
        self._shard_halos = []
        self._shared_list = []
        self._shared = None
        objects = (
            {} if monitor_blobs is not None else dict(self._edge_table.all_objects())
        )
        per_shard_queries: List[Dict[int, tuple]] = [{} for _ in range(parts)]
        for query_id, (location, spec) in initial_queries.items():
            if isinstance(spec, QuerySpec) and spec.kind == "aggregate_knn":
                # Aggregate points may lie on any shard's edges: owned by
                # the coordinator from the start.
                self._query_owner[query_id] = None
                self._boundary_queries.add(query_id)
                self._divergent_queries.add(query_id)
                self._boundary_refresh_needed = True
                continue
            owner = self._owner_of_location(location)
            self._query_owner[query_id] = owner
            per_shard_queries[owner][query_id] = (location, spec)
        inits: List[ShardInit] = []
        for part in range(parts):
            block, halo, local_edges = partition_block(full_csr, self._assignment, part)
            members = set(block) | set(halo)
            edge_ids = set(local_edges)
            subnet = _extract_subnetwork(self._network, members, edge_ids)
            shared = SharedCSR(csr_snapshot(subnet))
            self._subnetworks.append(subnet)
            self._shard_edge_ids.append(edge_ids)
            self._shard_halos.append(frozenset(halo))
            self._shared_list.append(shared)
            inits.append(
                ShardInit(
                    shard_id=part,
                    algorithm=self._algorithm_key,
                    kernel=self._kernel,
                    network_blob=(
                        None
                        if monitor_blobs is not None
                        else pickle.dumps(subnet, protocol=pickle.HIGHEST_PROTOCOL)
                    ),
                    objects={
                        object_id: location
                        for object_id, location in objects.items()
                        if location.edge_id in edge_ids
                    },
                    queries=per_shard_queries[part],
                    csr_handle=shared.handle,
                    zero_copy=self._zero_copy,
                    monitor_blob=(
                        monitor_blobs[part] if monitor_blobs is not None else None
                    ),
                    halo_nodes=frozenset(halo),
                )
            )
        return inits

    def _owner_of_location(self, location: NetworkLocation) -> int:
        """Shard index owning *location*: the one holding its edge's start.

        Both endpoints of a cut-straddling edge have the edge locally, so
        picking the start node's block is an arbitrary-but-deterministic
        choice among shards that can all answer exactly.
        """
        return self._assignment[self._network.edge(location.edge_id).start]

    def _recv(self, shard: _Shard):
        """Receive one message from *shard*, translating failures.

        Bounded by the ``recv_timeout`` constructor argument: a worker that
        neither replies nor dies (stuck in a syscall, SIGSTOPped, livelocked)
        would otherwise freeze the parent forever — ``conn.recv()`` has no
        deadline of its own.
        """
        try:
            if self._recv_timeout is not None and not shard.conn.poll(self._recv_timeout):
                raise MonitoringError(
                    f"shard {shard.shard_id} (pid {shard.process.pid}) did not "
                    f"reply within {self._recv_timeout}s; treating the worker "
                    f"as stuck"
                )
            message = shard.conn.recv()
        except (EOFError, OSError) as exc:
            raise MonitoringError(
                f"shard {shard.shard_id} (pid {shard.process.pid}) died "
                f"without replying"
            ) from exc
        if message[0] == "error":
            raise MonitoringError(
                f"shard {shard.shard_id} failed:\n{message[1]}"
            )
        return message

    def _resync(self) -> None:
        """Respawn every worker from the current state (topology changed)."""
        # A query can sit in the result cache while a termination is still
        # pending (remove_query dropped its location already): don't
        # re-register it — the termination in the next batch is a no-op on
        # workers that never knew the query — but keep its last result so
        # result_of() behaves like the single-process server until the
        # termination is processed.
        live_queries = {
            query_id: (self._query_locations[query_id], self._query_specs[query_id])
            for query_id in self._merged_results
            if query_id in self._query_locations and query_id in self._query_specs
        }
        old_shards, old_shared_list = self._shards, self._shared_list
        self._shards, self._shared, self._shared_list = [], None, []
        _cleanup(old_shards, old_shared_list)
        if self._partitioning == "graph":
            # The partition layout is about to be recomputed over the new
            # topology: every live query — including currently-boundary
            # ones — is re-routed as a fresh install by its new owner, and
            # the boundary set is rebuilt from the ready-payload
            # escalations.  ``_divergent_queries`` stays sticky: a query
            # that was ever fresh-evaluated keeps its byte-identity
            # carve-out even if it lands contained after the resync.
            self._boundary_queries = set()
            self._query_owner = {}
        # The cached results are deliberately left in place: the workers'
        # "ready" payload overwrites every live query's entry, and a
        # re-registered query whose result did not change must not be
        # flagged as changed.
        self._spawn_workers(initial_queries=live_queries)

    def _ensure_open(self) -> None:
        """Raise when the server was closed — with the failure cause if any.

        A deliberate :meth:`close` keeps the generic message; a fail-closed
        shutdown (a shard died or desynced mid-tick) raises the typed
        :class:`~repro.exceptions.ServerFailedError` carrying what went
        wrong, so callers can tell "I closed it" from "it broke".
        """
        if self._failed is not None:
            raise ServerFailedError(self._failed)
        if self._closed:
            raise MonitoringError("this sharded server is closed")

    def _fail(self, exc: BaseException) -> None:
        """Mark the server failed and tear the fleet down (fail-closed).

        Called when a tick (or snapshot) cannot complete: some shards may
        have applied the batch while others did not, and unread replies may
        sit in the pipes — the fleet is no longer in lock-step, so every
        connection is closed, the workers are stopped, and any further use
        raises :class:`~repro.exceptions.ServerFailedError`.
        """
        if self._failed is None and not self._closed:
            self._failed = f"{type(exc).__name__}: {exc}"
        self.close()

    def _ensure_accepting_updates(self) -> None:
        """Fail ingestion fast once closed — buffered updates could never run."""
        self._ensure_open()

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def take_pending_batch(self) -> UpdateBatch:
        """Detach the pending buffer as the next tick's batch (see base class).

        Refuses on a closed or failed server, where the batch could never be
        applied.
        """
        self._ensure_open()
        return super().take_pending_batch()

    def apply_taken_batch(self, batch: UpdateBatch) -> TimestepReport:
        """Process a previously taken batch across all shards.

        The parent applies the normalized batch to its authoritative state
        (patching the shared snapshot's weight columns in place), sends each
        shard the object/edge updates plus the query updates it owns, and
        merges the replies into one :class:`TimestepReport` whose
        ``changed_queries`` / ``counters`` aggregate over shards.

        A shard failure mid-tick (worker exception, dead process, stuck or
        dropped reply, protocol violation) raises and **fails the server
        closed**: by then some shards may have applied the batch while
        others did not, and unread replies may sit in the pipes — a later
        tick would read a stale report and silently desync — so every
        connection is drained by closing it, the workers are stopped, and
        any further use raises the typed
        :class:`~repro.exceptions.ServerFailedError`.
        """
        self._ensure_open()
        try:
            return self._apply_taken_inner(batch)
        except BaseException as exc:
            self._fail(exc)
            raise

    def tick(self) -> TimestepReport:
        """Process every buffered update as one timestamp, across all shards.

        Equivalent to :meth:`take_pending_batch` + :meth:`apply_taken_batch`;
        see the latter for the fan-out/merge mechanics and the fail-closed
        behaviour on shard failure.
        """
        return self.apply_taken_batch(self.take_pending_batch())

    def _apply_taken_inner(self, batch: UpdateBatch) -> TimestepReport:
        """The actual tick sequence (:meth:`apply_taken_batch` fail-closes)."""
        if self._network.topology_version != self._exported_topology_version:
            self._resync()
        start = time.perf_counter()
        normalized = batch.normalized()
        apply_batch(self._network, self._edge_table, normalized)

        graph_mode = self._partitioning == "graph"
        if graph_mode:
            per_shard_messages = self._graph_shard_messages(normalized)
        else:
            per_shard_updates: List[list] = [[] for _ in range(self._num_shards)]
            for update in normalized.query_updates:
                per_shard_updates[
                    shard_of(update.query_id, self._num_shards)
                ].append(update)
            # The object/edge updates go to every shard; serializing them
            # once here (instead of once per conn.send) keeps the parent's
            # fan-out cost independent of the worker count.
            shared_blob = pickle.dumps(
                (normalized.object_updates, normalized.edge_updates),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            per_shard_messages = [
                (shared_blob, per_shard_updates[shard_id])
                for shard_id in range(self._num_shards)
            ]
        for shard in self._shards:
            blob, query_updates = per_shard_messages[shard.shard_id]
            try:
                shard.conn.send(("tick", normalized.timestamp, blob, query_updates))
            except (OSError, ValueError) as exc:
                raise MonitoringError(
                    f"shard {shard.shard_id} (pid {shard.process.pid}) is gone; "
                    f"cannot fan out timestamp {normalized.timestamp}"
                ) from exc

        changed: set = set()
        counters: Dict[str, int] = {}
        max_shard_seconds = 0.0
        max_shard_cpu_seconds = 0.0
        escalated_now: List[int] = []
        for shard in self._shards:
            _, payload = self._recv(shard)
            (
                timestamp,
                elapsed,
                cpu_seconds,
                shard_changed,
                shard_counters,
                results,
                escalated,
            ) = payload
            if timestamp != normalized.timestamp:  # pragma: no cover - protocol bug
                raise MonitoringError(
                    f"shard {shard.shard_id} reported timestamp {timestamp}, "
                    f"expected {normalized.timestamp}"
                )
            changed.update(shard_changed)
            if elapsed > max_shard_seconds:
                max_shard_seconds = elapsed
            if cpu_seconds > max_shard_cpu_seconds:
                max_shard_cpu_seconds = cpu_seconds
            for key, value in shard_counters.items():
                counters[key] = counters.get(key, 0) + value
            self._merged_results.update(results)
            escalated_now.extend(escalated)
        for query_id in escalated_now:
            if query_id in self._query_specs:
                self._query_owner[query_id] = None
                self._boundary_queries.add(query_id)
                self._divergent_queries.add(query_id)
        for update in normalized.query_updates:
            if update.is_termination:
                self._merged_results.pop(update.query_id, None)

        if graph_mode and self._boundary_queries and (
            not normalized.is_empty() or self._boundary_refresh_needed
        ):
            changed.update(self._evaluate_boundary_queries())
        self._boundary_refresh_needed = False

        self._last_max_shard_seconds = max_shard_seconds
        self._last_max_shard_cpu_seconds = max_shard_cpu_seconds
        return TimestepReport(
            timestamp=normalized.timestamp,
            elapsed_seconds=time.perf_counter() - start,
            changed_queries=changed,
            counters=counters,
        )

    # ------------------------------------------------------------------
    # graph-partitioned routing and the cross-shard expansion protocol
    # ------------------------------------------------------------------
    def _graph_shard_messages(self, normalized: UpdateBatch) -> List[tuple]:
        """Per-shard ``(blob, query_updates)`` payloads for a graph-mode tick.

        Object and edge updates are translated into each shard's frame of
        reference: an object moving off a shard's local edges becomes a
        deletion there, one moving onto them an insertion, and updates that
        never touch a shard are dropped.  Query updates route by ownership —
        a query moving across a partition cut is terminated at its old
        owner and taken over by the coordinator as a boundary query, and
        aggregate installs go straight to the boundary set.  The parent
        also applies edge-weight changes to its kept subnetworks so the
        per-shard shared CSR columns stay fresh for zero-copy workers.
        """
        per_shard_updates: List[list] = [[] for _ in range(self._num_shards)]
        for update in normalized.query_updates:
            query_id = update.query_id
            if update.is_termination:
                self._boundary_queries.discard(query_id)
                owner = self._query_owner.pop(query_id, None)
                if owner is not None:
                    per_shard_updates[owner].append(update)
                continue
            spec = self._query_specs.get(query_id) or update.spec
            is_aggregate = spec is not None and spec.kind == "aggregate_knn"
            if update.is_installation:
                if is_aggregate:
                    self._query_owner[query_id] = None
                    self._boundary_queries.add(query_id)
                    self._divergent_queries.add(query_id)
                    continue
                owner = self._owner_of_location(update.new_location)
                self._query_owner[query_id] = owner
                per_shard_updates[owner].append(update)
                continue
            # Movement.
            old_owner = self._query_owner.get(query_id)
            if query_id in self._boundary_queries or old_owner is None:
                continue  # coordinator-owned: re-evaluated this tick
            new_owner = self._owner_of_location(update.new_location)
            if new_owner == old_owner and not is_aggregate:
                per_shard_updates[old_owner].append(update)
                continue
            # Crossing a partition cut (or changing into an aggregate):
            # terminate at the old owner and take the query over.
            per_shard_updates[old_owner].append(
                QueryUpdate(query_id, update.old_location, None)
            )
            self._query_owner[query_id] = None
            self._boundary_queries.add(query_id)
            self._divergent_queries.add(query_id)

        messages: List[tuple] = []
        for part in range(self._num_shards):
            edge_ids = self._shard_edge_ids[part]
            local_objects: List[ObjectUpdate] = []
            for update in normalized.object_updates:
                old_local = (
                    update.old_location is not None
                    and update.old_location.edge_id in edge_ids
                )
                new_local = (
                    update.new_location is not None
                    and update.new_location.edge_id in edge_ids
                )
                if old_local and new_local:
                    local_objects.append(update)
                elif old_local:
                    local_objects.append(
                        ObjectUpdate(update.object_id, update.old_location, None)
                    )
                elif new_local:
                    local_objects.append(
                        ObjectUpdate(update.object_id, None, update.new_location)
                    )
            local_edges = [
                update
                for update in normalized.edge_updates
                if update.edge_id in edge_ids
            ]
            for update in local_edges:
                # Keep the parent-held subnetwork (and through its snapshot
                # listener the shared CSR weight columns) in lock-step
                # before the fan-out, mirroring the replica-mode ordering.
                self._subnetworks[part].set_edge_weight(
                    update.edge_id, update.new_weight
                )
            messages.append(
                (
                    pickle.dumps(
                        (local_objects, local_edges),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ),
                    per_shard_updates[part],
                )
            )
        return messages

    def _evaluate_boundary_queries(self) -> Set[int]:
        """Re-evaluate every live boundary query; return the changed ids.

        Runs once per non-empty tick (and after a spawn that escalated
        queries): boundary answers depend on state anywhere in the network,
        so any applied update may move them.  The changed flag mirrors the
        single-process semantics — a query counts as changed when its
        neighbor list (ids *and* distances) differs from the cached one, or
        when it has no cached result yet (fresh installation).
        """
        changed: Set[int] = set()
        for query_id in sorted(self._boundary_queries):
            location = self._query_locations.get(query_id)
            spec = self._query_specs.get(query_id)
            if location is None or spec is None:
                continue
            result = self._evaluate_boundary_query(query_id, location, spec)
            old = self._merged_results.get(query_id)
            self._merged_results[query_id] = result
            if old is None or old.neighbors != result.neighbors:
                changed.add(query_id)
        return changed

    def _evaluate_boundary_query(
        self, query_id: int, location: NetworkLocation, spec: QuerySpec
    ) -> KnnResult:
        """Exact coordinator-side evaluation of one boundary query."""
        if spec.kind == "aggregate_knn":
            object_count = self._edge_table.object_count
            if object_count == 0:
                return KnnResult(
                    query_id=query_id, k=spec.result_k, neighbors=(),
                    radius=float("inf"),
                )
            per_point = [
                self._distributed_expand(point, object_count)[0]
                for point in spec.aggregation_points(location)
            ]
            neighbors, radius = merge_aggregate(per_point, spec)
            return KnnResult(
                query_id=query_id, k=spec.result_k,
                neighbors=tuple(neighbors), radius=radius,
            )
        if spec.kind == "range":
            neighbors, radius = self._distributed_expand(
                location, 1, fixed_radius=spec.radius
            )
        else:
            neighbors, radius = self._distributed_expand(location, spec.k)
        return KnnResult(
            query_id=query_id, k=spec.result_k,
            neighbors=tuple(neighbors), radius=radius,
        )

    def _distributed_expand(
        self,
        location: NetworkLocation,
        k: int,
        fixed_radius: Optional[float] = None,
    ) -> Tuple[List[tuple], float]:
        """One exact network expansion through the cross-shard protocol.

        Round 0 asks the shard owning *location* for a fresh expansion;
        every settled halo node comes back as a ``(node, distance)``
        frontier continuation.  Each round the continuations that are
        within the current bound *and* improve on the best distance already
        dispatched for that node are forwarded to the shard owning the
        node as ``seed_nodes`` resume requests (carrying the current top-k
        as upper-bound candidates to tighten the remote search).  The loop
        terminates because a node is only re-dispatched at a strictly
        smaller distance and path sums form a finite set.

        Returns ``(neighbors, radius)`` with exactly the float values a
        fresh single-process :func:`~repro.core.search.expand_knn` would
        produce: each partial expansion relaxes the same edges in the same
        order as the corresponding stretch of the full-graph search.
        """
        owner = self._owner_of_location(location)
        cand: Dict[int, float] = {}
        best_dispatched: Dict[int, float] = {}
        pending: Dict[int, list] = {
            owner: [(k, location, None, (), fixed_radius)]
        }
        while pending:
            for part in sorted(pending):
                shard = self._shards[part]
                try:
                    shard.conn.send(("expand", pending[part]))
                except (OSError, ValueError) as exc:
                    raise MonitoringError(
                        f"shard {shard.shard_id} (pid {shard.process.pid}) is "
                        f"gone; cannot forward a cross-shard expansion"
                    ) from exc
            round_hits: List[Tuple[int, float]] = []
            for part in sorted(pending):
                shard = self._shards[part]
                kind, payload = self._recv(shard)
                if kind != "expanded":  # pragma: no cover - protocol violation
                    raise MonitoringError(
                        f"shard {shard.shard_id} sent {kind!r} instead of "
                        f"'expanded'"
                    )
                for neighbors, halo_hits in payload:
                    for object_id, distance in neighbors:
                        previous = cand.get(object_id)
                        if previous is None or distance < previous:
                            cand[object_id] = distance
                    round_hits.extend(halo_hits)
            if fixed_radius is not None:
                bound = fixed_radius
                candidates: tuple = ()
            else:
                top = sorted(
                    (distance, object_id) for object_id, distance in cand.items()
                )[:k]
                bound = top[k - 1][0] if len(top) >= k else float("inf")
                candidates = tuple(
                    (object_id, distance) for distance, object_id in top
                )
            seeds_by_shard: Dict[int, List[Tuple[int, float]]] = {}
            for node_id, distance in sorted(round_hits):
                if distance > bound:
                    # Strictly beyond the bound: nothing past this node can
                    # enter the answer (ties at the bound are still
                    # forwarded — an object at exactly the k-th distance
                    # may win the id tie-break).
                    continue
                previous = best_dispatched.get(node_id)
                if previous is not None and distance >= previous:
                    continue
                best_dispatched[node_id] = distance
                seeds_by_shard.setdefault(self._assignment[node_id], []).append(
                    (node_id, distance)
                )
            pending = {
                part: [(k, None, seeds, candidates, fixed_radius)]
                for part, seeds in seeds_by_shard.items()
            }
        if fixed_radius is not None:
            pairs = sorted(
                (distance, object_id)
                for object_id, distance in cand.items()
                if distance <= fixed_radius
            )
            return [
                (object_id, distance) for distance, object_id in pairs
            ], float(fixed_radius)
        pairs = sorted((distance, object_id) for object_id, distance in cand.items())[:k]
        radius = pairs[k - 1][0] if len(pairs) >= k else float("inf")
        return [(object_id, distance) for distance, object_id in pairs], radius

    def worker_peak_rss(self) -> List[int]:
        """Peak resident set size, in bytes, of every worker process.

        The memory-model evidence for graph partitioning: a block+halo
        worker should peak well below a full-replica worker on large
        networks.  Asks each live worker over its pipe (a shard failure
        fails the server closed, like a tick).

        Example::

            rss = server.worker_peak_rss()
            print(max(rss) / 2**20, "MiB")
        """
        self._ensure_open()
        try:
            for shard in self._shards:
                try:
                    shard.conn.send(("rss",))
                except (OSError, ValueError) as exc:
                    raise MonitoringError(
                        f"shard {shard.shard_id} (pid {shard.process.pid}) is "
                        f"gone; cannot request its peak RSS"
                    ) from exc
            sizes: List[int] = []
            for shard in self._shards:
                kind, payload = self._recv(shard)
                if kind != "rss":  # pragma: no cover - protocol violation
                    raise MonitoringError(
                        f"shard {shard.shard_id} sent {kind!r} instead of 'rss'"
                    )
                sizes.append(int(payload))
            return sizes
        except BaseException as exc:
            self._fail(exc)
            raise

    @property
    def last_max_shard_seconds(self) -> float:
        """Slowest shard's wall-clock processing time in the last tick.

        The sharded tick's critical path: ``elapsed_seconds`` of the merged
        report additionally includes fan-out/merge IPC, so throughput
        studies report both.  0.0 before the first tick.
        """
        return getattr(self, "_last_max_shard_seconds", 0.0)

    @property
    def last_max_shard_cpu_seconds(self) -> float:
        """Slowest shard's CPU time in the last tick (0.0 before one).

        Unlike :attr:`last_max_shard_seconds` this is immune to core
        contention: on an oversubscribed machine (more workers than cores)
        it still reports what the critical path would cost with every shard
        on its own core.
        """
        return getattr(self, "_last_max_shard_cpu_seconds", 0.0)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def result_of(self, query_id: int) -> KnnResult:
        """Current k-NN result of a query (after the last tick).

        Raises :class:`~repro.exceptions.MonitoringError` on a closed
        server and :class:`~repro.exceptions.ServerFailedError` on a failed
        one: a closed fleet can no longer refresh the cache, so serving
        from it would silently return stale answers.  Read (and keep)
        :meth:`results` before closing if the final state is needed.
        """
        self._ensure_open()
        try:
            return self._merged_results[query_id]
        except KeyError as exc:
            raise UnknownQueryError(query_id) from exc

    def results(self) -> Dict[int, KnnResult]:
        """Current results of every query.

        Like :meth:`result_of`, refuses on a closed or failed server with
        the matching typed error instead of serving a cache that can never
        be refreshed again.
        """
        self._ensure_open()
        return dict(self._merged_results)

    def discard_pending(self) -> UpdateBatch:
        """Drop (and return) every buffered-but-unprocessed update.

        Refuses on a closed or failed server — the buffer is rolled back
        into entity maps nobody can observe anymore, so a silent success
        would only mask a use-after-close bug in the caller.
        """
        self._ensure_open()
        return super().discard_pending()

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> bytes:
        """Serialize the complete fleet state to one opaque blob.

        Each worker answers a ``("snapshot",)`` request with its pickled
        monitor — expansion trees, per-query float history and all — and
        the parent packs those blobs together with its own authoritative
        state (network, edge table, entity maps, pending buffer, merged
        results).  :func:`~repro.core.server.restore_server` rebuilds the
        server by respawning one worker per blob, so the restored fleet
        continues byte-identically.  Like a tick, a shard failure while
        snapshotting fails the server closed.
        """
        self._ensure_open()
        try:
            return self._snapshot_state_inner()
        except BaseException as exc:
            self._fail(exc)
            raise

    def _snapshot_state_inner(self) -> bytes:
        """The actual snapshot sequence (:meth:`snapshot_state` fail-closes)."""
        for shard in self._shards:
            try:
                shard.conn.send(("snapshot",))
            except (OSError, ValueError) as exc:
                raise MonitoringError(
                    f"shard {shard.shard_id} (pid {shard.process.pid}) is gone; "
                    f"cannot request a snapshot"
                ) from exc
        shard_blobs: List[bytes] = []
        for shard in self._shards:
            kind, payload = self._recv(shard)
            if kind != "snapshot":  # pragma: no cover - protocol violation
                raise MonitoringError(
                    f"shard {shard.shard_id} sent {kind!r} instead of 'snapshot'"
                )
            shard_blobs.append(payload)
        state = {
            "kind": "sharded",
            "algorithm": self._algorithm_key,
            "kernel": self._kernel,
            "workers": self._num_workers,
            "partitioning": self._partitioning,
            "shards": self._num_shards,
            "zero_copy": self._zero_copy,
            "start_method": self._start_method,
            "recv_timeout": self._recv_timeout,
            "network": self._network,
            "edge_table": self._edge_table,
            "timestamp": self._timestamp,
            "pending": self._pending,
            "object_locations": self._object_locations,
            "query_locations": self._query_locations,
            "query_specs": self._query_specs,
            "merged_results": self._merged_results,
            "shard_blobs": shard_blobs,
            "boundary_queries": set(self._boundary_queries),
            "divergent_queries": set(self._divergent_queries),
        }
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def _restore(cls, state: Dict[str, object]) -> "ShardedMonitoringServer":
        """Rebuild a sharded server from a decoded snapshot-state dict.

        Invoked by :func:`~repro.core.server.restore_server`; bypasses
        ``__init__`` (the snapshot already holds constructed state) and
        respawns the fleet from the per-shard monitor blobs.
        """
        try:
            server = object.__new__(cls)
            server._num_workers = state["workers"]
            server._partitioning = state.get("partitioning", "replica")
            server._num_shards = state.get("shards", state["workers"])
            server._zero_copy = state["zero_copy"]
            server._start_method = state["start_method"]
            server._recv_timeout = state["recv_timeout"]
            server._closed = False
            server._failed = None
            server._shards = []
            server._shared = None
            server._shared_list = []
            server._merged_results = dict(state["merged_results"])
            server._finalizer = None
            server._algorithm_key = state["algorithm"]
            server._kernel = state["kernel"]
            server._monitor = None
            server._network = state["network"]
            server._edge_table = state["edge_table"]
            server._timestamp = state["timestamp"]
            server._pending = state["pending"]
            server._object_locations = dict(state["object_locations"])
            server._query_locations = dict(state["query_locations"])
            server._query_specs = dict(state["query_specs"])
            server._assignment = {}
            server._subnetworks = []
            server._shard_edge_ids = []
            server._shard_halos = []
            server._query_owner = {}
            server._boundary_queries = set(state.get("boundary_queries", ()))
            server._divergent_queries = set(state.get("divergent_queries", ()))
            server._boundary_refresh_needed = False
            shard_blobs = list(state["shard_blobs"])
        except KeyError as exc:
            raise RecoveryError(f"sharded snapshot is missing field {exc}") from exc
        if server._partitioning != "graph" and len(shard_blobs) != server._num_workers:
            raise RecoveryError(
                f"sharded snapshot holds {len(shard_blobs)} shard blobs "
                f"for {server._num_workers} workers"
            )
        server._spawn_workers(initial_queries={}, monitor_blobs=shard_blobs)
        if server._partitioning == "graph":
            # Ownership is derivable: a live query is owned by the shard of
            # its edge unless the snapshot recorded it as boundary.
            server._query_owner = {
                query_id: (
                    None
                    if query_id in server._boundary_queries
                    else server._owner_of_location(location)
                )
                for query_id, location in server._query_locations.items()
            }
        return server

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and unlink the shared snapshot (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        shards, shared_list = self._shards, self._shared_list
        self._shards, self._shared, self._shared_list = [], None, []
        _cleanup(shards, shared_list)
