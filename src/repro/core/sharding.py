"""Sharded query execution: one monitoring server, N worker processes.

:class:`ShardedMonitoringServer` keeps the exact public API of
:class:`~repro.core.server.MonitoringServer` — ingestion, ``tick()``,
``result_of()`` — but hash-partitions the continuous queries across worker
processes (:mod:`repro.core.worker`), so the per-tick monitoring work runs
on every core instead of one.  The pieces:

* **State shipping.**  Each worker gets a pickled replica of the road
  network (weight listeners are dropped in transit) and the current object
  placements; from then on it stays in sync by applying the same normalized
  update batches the parent applies.
* **Shared CSR snapshot.**  The flat-array kernel columns are exported once
  per topology version through :class:`~repro.network.csr.SharedCSR` and
  attached by every worker — either as zero-copy numpy views (the dominant
  read-only structure exists once in memory) or, by default, as private
  list copies made once per topology version (fastest Python-loop access).
  Weight deltas reach workers both through the shared arrays (the parent
  patches them in place before fanning a tick out) and through the edge
  updates broadcast in every batch, so both modes stay fresh without
  rebuilds.
* **Fan-out / merge.**  ``tick()`` sends every shard the timestamp's object
  and edge updates plus the query updates it owns, then merges the per-shard
  :class:`~repro.core.base.TimestepReport` replies — changed-query sets and
  work counters — and folds the changed results into one cache serving
  ``result_of()`` / ``results()``.
* **Topology bumps.**  When the network's ``topology_version`` changes, the
  next tick re-ships everything: workers are respawned with the current
  state and a freshly exported snapshot.

Example::

    from repro import MonitoringServer, city_network

    network = city_network(400, seed=7)
    with MonitoringServer(network, algorithm="ima", workers=4) as server:
        server.add_objects_at([(i, 50.0 * i, 80.0) for i in range(32)])
        server.add_query_at(1_000_000, x=100.0, y=100.0, k=4)
        report = server.tick()
        print(server.result_of(1_000_000).neighbors)
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.base import MonitorBase, TimestepReport
from repro.core.events import UpdateBatch, apply_batch
from repro.core.results import KnnResult
from repro.core.server import ALGORITHMS, MonitoringServer
from repro.core.worker import ShardInit, run_shard_worker, shard_of
from repro.exceptions import (
    MonitoringError,
    RecoveryError,
    ServerFailedError,
    UnknownQueryError,
)
from repro.network.csr import SharedCSR, csr_snapshot
from repro.network.edge_table import EdgeTable
from repro.network.graph import RoadNetwork
from repro.network.kernels import DEFAULT_KERNEL


def default_start_method() -> str:
    """The preferred multiprocessing start method on this platform.

    ``fork`` where available (fast spawn, cheap state shipping), ``spawn``
    otherwise; both are supported — every shipped object pickles cleanly.

    Example::

        ShardedMonitoringServer(network, workers=4,
                                start_method=default_start_method())
    """
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


@dataclass
class _Shard:
    """Parent-side handle of one worker process."""

    shard_id: int
    process: multiprocessing.Process
    conn: object  # multiprocessing.connection.Connection


def _cleanup(shards: List[_Shard], shared: Optional[SharedCSR]) -> None:
    """Best-effort teardown used by close() and the GC finalizer."""
    for shard in shards:
        try:
            shard.conn.send(("stop",))
        except (OSError, ValueError, BrokenPipeError):
            pass
    for shard in shards:
        shard.process.join(timeout=5.0)
        if shard.process.is_alive():  # pragma: no cover - stuck worker
            shard.process.terminate()
            shard.process.join(timeout=1.0)
        try:
            shard.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    if shared is not None:
        # Close-then-unlink, matching the documented SharedCSR lifecycle:
        # close() first restores the parent's adopted snapshot columns to
        # private lists and unmaps the block, so the subsequent unlink never
        # removes a name while this process still holds live views (on some
        # platforms that defers the removal and leaks the mapping).
        shared.close()
        shared.unlink()


class ShardedMonitoringServer(MonitoringServer):
    """A :class:`MonitoringServer` that executes queries on worker processes.

    Construct it directly, or — equivalently — via
    ``MonitoringServer(network, workers=N)`` with ``N > 1``.  The whole
    ingestion surface (``add_object`` … ``apply_updates``) is inherited
    unchanged; only execution is different: ``tick()`` fans the timestamp
    out to the shards and merges their reports, and ``result_of()`` serves
    from the merged result cache.  Call :meth:`close` (or use the server as
    a context manager) to stop the workers and release the shared-memory
    snapshot.

    Example::

        server = ShardedMonitoringServer(network, algorithm="gma", workers=2)
        try:
            server.add_object_at(1, x=120.0, y=80.0)
            server.add_query_at(100, x=100.0, y=100.0, k=2)
            server.tick()
            print(server.result_of(100).neighbors)
        finally:
            server.close()
    """

    def __init__(
        self,
        network: RoadNetwork,
        algorithm: Union[str, MonitorBase] = "ima",
        edge_table: Optional[EdgeTable] = None,
        kernel: str = DEFAULT_KERNEL,
        *,
        workers: int = 2,
        start_method: Optional[str] = None,
        zero_copy: bool = False,
        recv_timeout: Optional[float] = 120.0,
    ) -> None:
        """Create the sharded server and spawn its worker processes.

        Args:
            network: the road network (the parent stays its single writer).
            algorithm: ``"ovh"``, ``"ima"`` or ``"gma"``; monitor *instances*
                are rejected because monitors live in the workers.
            edge_table: optionally a pre-populated edge table; its objects
                are shipped to every worker as the initial placements.
            kernel: any registered kernel name (see
                :mod:`repro.network.kernels`) for the workers' monitors;
                ``"csr"`` by default.
            workers: number of worker processes (>= 1).
            start_method: multiprocessing start method; defaults to
                :func:`default_start_method`.
            zero_copy: when True, workers keep the shared CSR snapshot as
                zero-copy numpy views — one copy of the kernel columns in
                the whole fleet, at the cost of slower per-element access
                in the Python hot loop.  The default (False) has each
                worker copy the columns into private lists at attach time
                (once per topology version) and stay fresh through the
                weight deltas broadcast in every batch: ~30 % faster ticks,
                one column copy per worker.
            recv_timeout: seconds to wait for any single worker reply before
                declaring the shard stuck and failing the server with a
                :class:`MonitoringError` (the 5s join cap in teardown has
                the same role).  ``None`` disables the deadline and restores
                the old block-forever behaviour.
        """
        if workers < 1:
            raise MonitoringError(f"workers must be >= 1, got {workers}")
        if recv_timeout is not None and recv_timeout <= 0:
            raise MonitoringError(f"recv_timeout must be positive, got {recv_timeout}")
        self._num_workers = workers
        self._zero_copy = zero_copy
        self._start_method = start_method or default_start_method()
        self._recv_timeout = recv_timeout
        self._closed = False
        self._failed: Optional[str] = None
        self._shards: List[_Shard] = []
        self._shared: Optional[SharedCSR] = None
        self._merged_results: Dict[int, KnnResult] = {}
        self._finalizer: Optional[weakref.finalize] = None
        super().__init__(network, algorithm, edge_table, kernel)
        self._spawn_workers(initial_queries={})

    def _make_monitor(
        self, algorithm: Union[str, MonitorBase], kernel: str
    ) -> Optional[MonitorBase]:
        """Validate and record the worker algorithm; no in-process monitor."""
        if isinstance(algorithm, MonitorBase):
            raise MonitoringError(
                "a sharded server needs an algorithm *name* (its monitors "
                "live in worker processes); got a monitor instance"
            )
        self._algorithm_key = self._resolve_algorithm_key(algorithm)
        self._kernel = kernel
        return None

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Number of worker processes serving this server's queries."""
        return self._num_workers

    @property
    def algorithm_name(self) -> str:
        """Short name of the algorithm the workers run ("OVH"/"IMA"/"GMA")."""
        return ALGORITHMS[self._algorithm_key].name

    @property
    def monitor(self) -> MonitorBase:
        """Unavailable on a sharded server — monitors live in the workers.

        Raises AttributeError (not MonitoringError) so ``hasattr`` /
        ``getattr(..., default)`` probes behave normally.
        """
        raise AttributeError(
            "a sharded server has no in-process monitor; use result_of()/"
            "results(), which merge the workers' answers"
        )

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_workers(
        self,
        initial_queries: Dict[int, tuple],
        monitor_blobs: Optional[List[bytes]] = None,
    ) -> None:
        """Export the snapshot, ship the state, start one process per shard."""
        try:
            self._spawn_workers_inner(initial_queries, monitor_blobs)
        except BaseException:
            shards, shared = self._shards, self._shared
            self._shards, self._shared = [], None
            _cleanup(shards, shared)
            raise

    def _spawn_workers_inner(
        self,
        initial_queries: Dict[int, tuple],
        monitor_blobs: Optional[List[bytes]] = None,
    ) -> None:
        """The actual spawn sequence (:meth:`_spawn_workers` adds cleanup).

        With *monitor_blobs* (one pickled monitor per shard, from
        :meth:`snapshot_state`), each worker resumes from its blob instead
        of building a fresh replica — preserving the monitors' exact float
        history, which is what makes restored results byte-identical.
        """
        context = multiprocessing.get_context(self._start_method)
        self._shared = SharedCSR(csr_snapshot(self._network))
        self._exported_topology_version = self._network.topology_version
        # One serialization of the network for the whole fleet; each worker
        # unpickles its own replica (listeners drop out in transit).  A
        # restore ships per-shard monitor blobs instead, which embed each
        # worker's own replica.
        network_payload = (
            None
            if monitor_blobs is not None
            else pickle.dumps(self._network, protocol=pickle.HIGHEST_PROTOCOL)
        )
        objects = {} if monitor_blobs is not None else dict(self._edge_table.all_objects())
        per_shard_queries: List[Dict[int, tuple]] = [{} for _ in range(self._num_workers)]
        for query_id, assignment in initial_queries.items():
            per_shard_queries[shard_of(query_id, self._num_workers)][query_id] = assignment
        self._shards = []
        for shard_id in range(self._num_workers):
            parent_conn, child_conn = context.Pipe()
            init = ShardInit(
                shard_id=shard_id,
                algorithm=self._algorithm_key,
                kernel=self._kernel,
                network_blob=network_payload,
                objects=objects,
                queries=per_shard_queries[shard_id],
                csr_handle=self._shared.handle,
                zero_copy=self._zero_copy,
                monitor_blob=(
                    monitor_blobs[shard_id] if monitor_blobs is not None else None
                ),
            )
            process = context.Process(
                target=run_shard_worker,
                args=(child_conn, init),
                name=f"repro-shard-{shard_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._shards.append(_Shard(shard_id, process, parent_conn))
        for shard in self._shards:
            kind, payload = self._recv(shard)
            if kind != "ready":  # pragma: no cover - protocol violation
                raise MonitoringError(
                    f"shard {shard.shard_id} sent {kind!r} instead of 'ready'"
                )
            self._merged_results.update(payload)
        if self._finalizer is not None:
            self._finalizer.detach()
        self._finalizer = weakref.finalize(self, _cleanup, self._shards, self._shared)

    def _recv(self, shard: _Shard):
        """Receive one message from *shard*, translating failures.

        Bounded by the ``recv_timeout`` constructor argument: a worker that
        neither replies nor dies (stuck in a syscall, SIGSTOPped, livelocked)
        would otherwise freeze the parent forever — ``conn.recv()`` has no
        deadline of its own.
        """
        try:
            if self._recv_timeout is not None and not shard.conn.poll(self._recv_timeout):
                raise MonitoringError(
                    f"shard {shard.shard_id} (pid {shard.process.pid}) did not "
                    f"reply within {self._recv_timeout}s; treating the worker "
                    f"as stuck"
                )
            message = shard.conn.recv()
        except (EOFError, OSError) as exc:
            raise MonitoringError(
                f"shard {shard.shard_id} (pid {shard.process.pid}) died "
                f"without replying"
            ) from exc
        if message[0] == "error":
            raise MonitoringError(
                f"shard {shard.shard_id} failed:\n{message[1]}"
            )
        return message

    def _resync(self) -> None:
        """Respawn every worker from the current state (topology changed)."""
        # A query can sit in the result cache while a termination is still
        # pending (remove_query dropped its location already): don't
        # re-register it — the termination in the next batch is a no-op on
        # workers that never knew the query — but keep its last result so
        # result_of() behaves like the single-process server until the
        # termination is processed.
        live_queries = {
            query_id: (self._query_locations[query_id], self._query_specs[query_id])
            for query_id in self._merged_results
            if query_id in self._query_locations and query_id in self._query_specs
        }
        old_shards, old_shared = self._shards, self._shared
        self._shards, self._shared = [], None
        _cleanup(old_shards, old_shared)
        # The cached results are deliberately left in place: the workers'
        # "ready" payload overwrites every live query's entry, and if the
        # respawn fails the last known results stay readable after the
        # fail-closed shutdown.
        self._spawn_workers(initial_queries=live_queries)

    def _ensure_open(self) -> None:
        """Raise when the server was closed — with the failure cause if any.

        A deliberate :meth:`close` keeps the generic message; a fail-closed
        shutdown (a shard died or desynced mid-tick) raises the typed
        :class:`~repro.exceptions.ServerFailedError` carrying what went
        wrong, so callers can tell "I closed it" from "it broke".
        """
        if self._failed is not None:
            raise ServerFailedError(self._failed)
        if self._closed:
            raise MonitoringError("this sharded server is closed")

    def _fail(self, exc: BaseException) -> None:
        """Mark the server failed and tear the fleet down (fail-closed).

        Called when a tick (or snapshot) cannot complete: some shards may
        have applied the batch while others did not, and unread replies may
        sit in the pipes — the fleet is no longer in lock-step, so every
        connection is closed, the workers are stopped, and any further use
        raises :class:`~repro.exceptions.ServerFailedError`.
        """
        if self._failed is None and not self._closed:
            self._failed = f"{type(exc).__name__}: {exc}"
        self.close()

    def _ensure_accepting_updates(self) -> None:
        """Fail ingestion fast once closed — buffered updates could never run."""
        self._ensure_open()

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def take_pending_batch(self) -> UpdateBatch:
        """Detach the pending buffer as the next tick's batch (see base class).

        Refuses on a closed or failed server, where the batch could never be
        applied.
        """
        self._ensure_open()
        return super().take_pending_batch()

    def apply_taken_batch(self, batch: UpdateBatch) -> TimestepReport:
        """Process a previously taken batch across all shards.

        The parent applies the normalized batch to its authoritative state
        (patching the shared snapshot's weight columns in place), sends each
        shard the object/edge updates plus the query updates it owns, and
        merges the replies into one :class:`TimestepReport` whose
        ``changed_queries`` / ``counters`` aggregate over shards.

        A shard failure mid-tick (worker exception, dead process, stuck or
        dropped reply, protocol violation) raises and **fails the server
        closed**: by then some shards may have applied the batch while
        others did not, and unread replies may sit in the pipes — a later
        tick would read a stale report and silently desync — so every
        connection is drained by closing it, the workers are stopped, and
        any further use raises the typed
        :class:`~repro.exceptions.ServerFailedError`.
        """
        self._ensure_open()
        try:
            return self._apply_taken_inner(batch)
        except BaseException as exc:
            self._fail(exc)
            raise

    def tick(self) -> TimestepReport:
        """Process every buffered update as one timestamp, across all shards.

        Equivalent to :meth:`take_pending_batch` + :meth:`apply_taken_batch`;
        see the latter for the fan-out/merge mechanics and the fail-closed
        behaviour on shard failure.
        """
        return self.apply_taken_batch(self.take_pending_batch())

    def _apply_taken_inner(self, batch: UpdateBatch) -> TimestepReport:
        """The actual tick sequence (:meth:`apply_taken_batch` fail-closes)."""
        if self._network.topology_version != self._exported_topology_version:
            self._resync()
        start = time.perf_counter()
        normalized = batch.normalized()
        apply_batch(self._network, self._edge_table, normalized)

        per_shard_updates: List[list] = [[] for _ in range(self._num_workers)]
        for update in normalized.query_updates:
            per_shard_updates[shard_of(update.query_id, self._num_workers)].append(update)
        # The object/edge updates go to every shard; serializing them once
        # here (instead of once per conn.send) keeps the parent's fan-out
        # cost independent of the worker count.
        shared_blob = pickle.dumps(
            (normalized.object_updates, normalized.edge_updates),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        for shard in self._shards:
            try:
                shard.conn.send(
                    (
                        "tick",
                        normalized.timestamp,
                        shared_blob,
                        per_shard_updates[shard.shard_id],
                    )
                )
            except (OSError, ValueError) as exc:
                raise MonitoringError(
                    f"shard {shard.shard_id} (pid {shard.process.pid}) is gone; "
                    f"cannot fan out timestamp {normalized.timestamp}"
                ) from exc

        changed: set = set()
        counters: Dict[str, int] = {}
        max_shard_seconds = 0.0
        max_shard_cpu_seconds = 0.0
        for shard in self._shards:
            _, payload = self._recv(shard)
            timestamp, elapsed, cpu_seconds, shard_changed, shard_counters, results = payload
            if timestamp != normalized.timestamp:  # pragma: no cover - protocol bug
                raise MonitoringError(
                    f"shard {shard.shard_id} reported timestamp {timestamp}, "
                    f"expected {normalized.timestamp}"
                )
            changed.update(shard_changed)
            if elapsed > max_shard_seconds:
                max_shard_seconds = elapsed
            if cpu_seconds > max_shard_cpu_seconds:
                max_shard_cpu_seconds = cpu_seconds
            for key, value in shard_counters.items():
                counters[key] = counters.get(key, 0) + value
            self._merged_results.update(results)
        for update in normalized.query_updates:
            if update.is_termination:
                self._merged_results.pop(update.query_id, None)

        self._last_max_shard_seconds = max_shard_seconds
        self._last_max_shard_cpu_seconds = max_shard_cpu_seconds
        return TimestepReport(
            timestamp=normalized.timestamp,
            elapsed_seconds=time.perf_counter() - start,
            changed_queries=changed,
            counters=counters,
        )

    @property
    def last_max_shard_seconds(self) -> float:
        """Slowest shard's wall-clock processing time in the last tick.

        The sharded tick's critical path: ``elapsed_seconds`` of the merged
        report additionally includes fan-out/merge IPC, so throughput
        studies report both.  0.0 before the first tick.
        """
        return getattr(self, "_last_max_shard_seconds", 0.0)

    @property
    def last_max_shard_cpu_seconds(self) -> float:
        """Slowest shard's CPU time in the last tick (0.0 before one).

        Unlike :attr:`last_max_shard_seconds` this is immune to core
        contention: on an oversubscribed machine (more workers than cores)
        it still reports what the critical path would cost with every shard
        on its own core.
        """
        return getattr(self, "_last_max_shard_cpu_seconds", 0.0)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def result_of(self, query_id: int) -> KnnResult:
        """Current k-NN result of a query (after the last tick).

        Like the single-process server, results stay readable after
        :meth:`close` — only ingestion and ticking require live workers.
        """
        try:
            return self._merged_results[query_id]
        except KeyError as exc:
            raise UnknownQueryError(query_id) from exc

    def results(self) -> Dict[int, KnnResult]:
        """Current results of every query (readable even after close)."""
        return dict(self._merged_results)

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> bytes:
        """Serialize the complete fleet state to one opaque blob.

        Each worker answers a ``("snapshot",)`` request with its pickled
        monitor — expansion trees, per-query float history and all — and
        the parent packs those blobs together with its own authoritative
        state (network, edge table, entity maps, pending buffer, merged
        results).  :func:`~repro.core.server.restore_server` rebuilds the
        server by respawning one worker per blob, so the restored fleet
        continues byte-identically.  Like a tick, a shard failure while
        snapshotting fails the server closed.
        """
        self._ensure_open()
        try:
            return self._snapshot_state_inner()
        except BaseException as exc:
            self._fail(exc)
            raise

    def _snapshot_state_inner(self) -> bytes:
        """The actual snapshot sequence (:meth:`snapshot_state` fail-closes)."""
        for shard in self._shards:
            try:
                shard.conn.send(("snapshot",))
            except (OSError, ValueError) as exc:
                raise MonitoringError(
                    f"shard {shard.shard_id} (pid {shard.process.pid}) is gone; "
                    f"cannot request a snapshot"
                ) from exc
        shard_blobs: List[bytes] = []
        for shard in self._shards:
            kind, payload = self._recv(shard)
            if kind != "snapshot":  # pragma: no cover - protocol violation
                raise MonitoringError(
                    f"shard {shard.shard_id} sent {kind!r} instead of 'snapshot'"
                )
            shard_blobs.append(payload)
        state = {
            "kind": "sharded",
            "algorithm": self._algorithm_key,
            "kernel": self._kernel,
            "workers": self._num_workers,
            "zero_copy": self._zero_copy,
            "start_method": self._start_method,
            "recv_timeout": self._recv_timeout,
            "network": self._network,
            "edge_table": self._edge_table,
            "timestamp": self._timestamp,
            "pending": self._pending,
            "object_locations": self._object_locations,
            "query_locations": self._query_locations,
            "query_specs": self._query_specs,
            "merged_results": self._merged_results,
            "shard_blobs": shard_blobs,
        }
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def _restore(cls, state: Dict[str, object]) -> "ShardedMonitoringServer":
        """Rebuild a sharded server from a decoded snapshot-state dict.

        Invoked by :func:`~repro.core.server.restore_server`; bypasses
        ``__init__`` (the snapshot already holds constructed state) and
        respawns the fleet from the per-shard monitor blobs.
        """
        try:
            server = object.__new__(cls)
            server._num_workers = state["workers"]
            server._zero_copy = state["zero_copy"]
            server._start_method = state["start_method"]
            server._recv_timeout = state["recv_timeout"]
            server._closed = False
            server._failed = None
            server._shards = []
            server._shared = None
            server._merged_results = dict(state["merged_results"])
            server._finalizer = None
            server._algorithm_key = state["algorithm"]
            server._kernel = state["kernel"]
            server._monitor = None
            server._network = state["network"]
            server._edge_table = state["edge_table"]
            server._timestamp = state["timestamp"]
            server._pending = state["pending"]
            server._object_locations = dict(state["object_locations"])
            server._query_locations = dict(state["query_locations"])
            server._query_specs = dict(state["query_specs"])
            shard_blobs = list(state["shard_blobs"])
        except KeyError as exc:
            raise RecoveryError(f"sharded snapshot is missing field {exc}") from exc
        if len(shard_blobs) != server._num_workers:
            raise RecoveryError(
                f"sharded snapshot holds {len(shard_blobs)} shard blobs "
                f"for {server._num_workers} workers"
            )
        server._spawn_workers(initial_queries={}, monitor_blobs=shard_blobs)
        return server

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and unlink the shared snapshot (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        shards, shared = self._shards, self._shared
        self._shards, self._shared = [], None
        _cleanup(shards, shared)
