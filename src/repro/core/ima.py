"""IMA — the Incremental Monitoring Algorithm (Section 4 of the paper).

IMA monitors every query individually.  For each query it stores the
expansion tree built by the initial Figure-2 search (exact distances of all
network nodes within ``kNN_dist``) and registers the query in the influence
lists of the edges that can affect it.  At every timestamp only the updates
that fall inside some influence region are processed; everything else is
ignored.  When a query *is* affected, the valid part of its expansion tree
is identified, re-used, and the search resumes from its frontier instead of
starting from scratch.

Processing order within a timestamp follows Figure 10 of the paper:

1. queries that move outside their expansion tree are scheduled for full
   recomputation and excluded from further incremental handling;
2. edge-weight *decreases* are applied to the affected trees (the subtree
   below the updated edge keeps its shape and shifts by the weight delta;
   the rest of the tree is kept only up to the distance of the far endpoint
   of the updated edge);
3. edge-weight *increases* are applied (the subtree below the updated edge
   is discarded; the rest of the tree is untouched);
4. queries that move *inside* their tree are re-rooted at the new position
   (the subtree hanging below the new position stays valid);
5. object updates are classified per affected query as incoming, outgoing,
   or moving neighbors using the influence intervals;
6. every affected query is finalised: if its tree was pruned or it lost too
   many neighbors the expansion resumes from the remaining verified nodes,
   otherwise the new result is read directly off the maintained candidates
   (and the tree shrinks to the smaller radius).

Exactness of the retained node distances in each pruning case is argued in
the docstrings of the corresponding ``_prune_for_*`` methods and in
:mod:`repro.core.expansion`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.base import MonitorBase
from repro.core.events import EdgeWeightUpdate, ObjectUpdate, UpdateBatch
from repro.core.expansion import (
    ExpansionState,
    compute_influence_map,
    compute_influence_map_legacy,
    compute_influence_maps,
    edge_offset,
    object_distance_csr,
    object_distance_via_state,
)
from repro.core.influence import InfluenceIndex
from repro.core.queries import QuerySpec
from repro.core.results import KnnResult, Neighbor, NeighborList
from repro.core.search import ExpansionRequest, expand_knn, expand_knn_batch
from repro.core.search_legacy import expand_knn_legacy
from repro.exceptions import EdgeNotFoundError
from repro.network.csr import CSRGraph, csr_snapshot
from repro.network.kernels import (
    DEFAULT_KERNEL,
    KERNEL_LEGACY,
    registered_kernels,
    resolve_kernel,
)
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork

_EPS = 1e-9

#: Sentinel for "shift not yet resolved" in the batched prune's memo table
#: (None is taken: it marks descent through a removed increase subtree).
_UNRESOLVED = object()

#: Valid values of the monitors' ``kernel`` constructor argument, straight
#: from the kernel registry (see :mod:`repro.network.kernels`): the
#: per-query CSR heap path, the batched bucket-queue engine, the compiled
#: native engine and the dict-walking reference implementation.
KERNELS = registered_kernels()


@dataclass
class _QueryState:
    """Per-query incremental state (the paper's query-table entry).

    Shared by k-NN and range queries: for a range query ``radius`` is the
    spec's fixed radius (the influence region never grows or shrinks with
    the result), ``k`` is a placeholder 1, and ``neighbors`` holds *every*
    in-range candidate instead of a top-k ranking.
    """

    query_id: int
    k: int
    location: NetworkLocation
    spec: QuerySpec = field(default_factory=QuerySpec)
    state: ExpansionState = field(default_factory=ExpansionState)
    neighbors: NeighborList = field(default_factory=lambda: NeighborList(1))
    radius: float = float("inf")

    @property
    def is_range(self) -> bool:
        return self.spec.kind == "range"

    @property
    def fixed_radius(self) -> Optional[float]:
        """The pinned search radius of a range query (None for k-NN)."""
        return self.spec.radius if self.spec.kind == "range" else None

    def result_neighbors(self) -> List[Neighbor]:
        """The result list: top-k for k-NN, all in-range objects for range."""
        if self.spec.kind == "range":
            return [
                pair for pair in self.neighbors.all_candidates() if pair[1] <= self.radius
            ]
        return self.neighbors.top_k()


@dataclass
class _Pending:
    """What happened to a query during the current timestamp."""

    needs_resume: bool = False
    full_recompute: bool = False
    object_changes: bool = False
    #: total weight decrease applied to edges affecting this query (used to
    #: compute the radius within which the maintained candidates are still
    #: guaranteed to be complete)
    decrease_delta: float = 0.0
    #: distance the query moved inside its tree this timestamp
    move_distance: float = 0.0
    #: dial kernel only: edge updates collected for the one-pass prune flush
    #: (None until the first update of that kind arrives)
    decreases: Optional[List[EdgeWeightUpdate]] = None
    increases: Optional[List[EdgeWeightUpdate]] = None


class ImaMonitor(MonitorBase):
    """Incremental continuous k-NN monitoring with expansion trees.

    Example::

        monitor = ImaMonitor(network, edge_table)
        monitor.register_query(1, location, k=4)
        monitor.process_batch(batch)      # incremental maintenance
    """

    name = "IMA"

    def __init__(
        self,
        network: RoadNetwork,
        edge_table: EdgeTable,
        counters=None,
        kernel: str = DEFAULT_KERNEL,
    ) -> None:
        """Create the monitor.

        Args:
            network: the shared road network.
            edge_table: the shared data-object table.
            counters: optional work counters shared with a caller.
            kernel: ``"csr"`` (default) runs every search, influence refresh
                and object-distance computation over the flat-array snapshot
                of :mod:`repro.network.csr`, refreshed once per processed
                batch; the batch kernels (``"dial"`` and the compiled
                ``"native"``) additionally restructure each tick into
                collect-then-flush form — edge prunes, resumed searches and
                influence refreshes are gathered per tick and served by one
                :func:`~repro.core.search.expand_knn_batch` call on the
                selected engine (results identical to ``"csr"``);
                ``"legacy"`` keeps the original dict-walking paths
                (:func:`~repro.core.search_legacy.expand_knn_legacy` and the
                ``*_legacy`` helpers), which the differential tests compare
                against.  Validated against the registry of
                :mod:`repro.network.kernels`; an unknown name raises
                :class:`~repro.exceptions.UnknownKernelError`.
        """
        super().__init__(network, edge_table, counters)
        spec = resolve_kernel(kernel)
        self._kernel = spec.name
        self._use_csr = spec.name != KERNEL_LEGACY
        self._use_batch = spec.batch
        #: CSR snapshot acquired once per processed batch (None outside).
        self._batch_csr: Optional[CSRGraph] = None
        #: Dial quantization/numpy support of the batch snapshot (dial only).
        self._batch_support = None
        self._states: Dict[int, _QueryState] = {}
        self._influence = InfluenceIndex()
        # Aggregate k-NN queries (no expansion tree / influence entries)
        # register in the inherited self._aggregates and are re-evaluated
        # through MonitorBase._refresh_aggregates.

    # ------------------------------------------------------------------
    # introspection helpers (used by tests and memory accounting)
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> str:
        """This monitor's registry kernel name (see :mod:`repro.network.kernels`)."""
        return self._kernel

    @property
    def influence_index(self) -> InfluenceIndex:
        """The shared edge -> query influence index (read-only use)."""
        return self._influence

    def expansion_state_of(self, query_id: int) -> ExpansionState:
        """The expansion tree of a query (read-only use)."""
        return self._states[query_id].state

    def memory_footprint_bytes(self) -> int:
        """Result lists + expansion trees + influence entries (Figure 18)."""
        base = super().memory_footprint_bytes()
        trees = sum(qs.state.footprint_bytes() for qs in self._states.values())
        influence = 12 * len(self._influence) + 20 * self._influence.interval_count()
        return base + trees + influence

    # ------------------------------------------------------------------
    # MonitorBase hooks
    # ------------------------------------------------------------------
    def _install_query(
        self, query_id: int, location: NetworkLocation, spec: QuerySpec
    ) -> KnnResult:
        if spec.kind == "aggregate_knn":
            self._aggregates.add(query_id)
            neighbors, radius = self._evaluate_aggregate(location, spec)
            return KnnResult(
                query_id=query_id,
                k=spec.result_k,
                neighbors=tuple(neighbors),
                radius=radius,
            )
        query_state = _QueryState(
            query_id=query_id,
            k=spec.k,
            location=location,
            spec=spec,
            neighbors=NeighborList(spec.k),
        )
        self._states[query_id] = query_state
        self._fresh_search(query_state)
        return KnnResult(
            query_id=query_id,
            k=spec.result_k,
            neighbors=tuple(query_state.result_neighbors()),
            radius=query_state.radius,
        )

    def _remove_query(self, query_id: int) -> None:
        self._influence.clear_subscriber(query_id)
        self._states.pop(query_id, None)
        self._aggregates.discard(query_id)

    def _process(self, batch: UpdateBatch) -> Set[int]:
        if self._use_csr:
            # One snapshot lookup/refresh per batch: every resumed search,
            # influence refresh and object-distance computation below reuses
            # it instead of re-checking staleness per query.
            self._batch_csr = csr_snapshot(self._network)
            if self._use_batch:
                self._batch_support = self._batch_csr.dial_support()
        try:
            changed = self._process_updates(batch)
            if self._aggregates:
                changed |= self._refresh_aggregates(batch)
            return changed
        finally:
            self._batch_csr = None
            self._batch_support = None

    def _process_updates(self, batch: UpdateBatch) -> Set[int]:
        pending: Dict[int, _Pending] = {}
        changed: Set[int] = set()

        def pending_of(query_id: int) -> _Pending:
            entry = pending.get(query_id)
            if entry is None:
                entry = _Pending()
                pending[query_id] = entry
            return entry

        # Step 1 — query movements: classify inside / outside the tree.
        deferred_moves: List[Tuple[_QueryState, NetworkLocation]] = []
        for update in batch.query_updates:
            query_state = self._states.get(update.query_id)
            if query_state is None or update.new_location is None:
                continue
            entry = pending_of(update.query_id)
            move_distance = self._object_distance(
                query_state.state, update.new_location, query_state.location
            )
            if move_distance <= query_state.radius + _EPS:
                entry.move_distance += move_distance
                deferred_moves.append((query_state, update.new_location))
            else:
                # Moving outside the influence region invalidates everything.
                query_state.location = update.new_location
                entry.full_recompute = True

        # Steps 2 and 3 — edge weight changes, decreases before increases
        # (processing an increase first could leave a stale subtree that a
        # concurrent decrease elsewhere has made reachable through a shorter
        # path; see Section 4.5).  The dial kernel only *collects* the
        # updates here and prunes each affected tree once in the flush below
        # instead of once per (query, update) pair.
        decreases = [u for u in batch.edge_updates if u.is_decrease]
        increases = [u for u in batch.edge_updates if u.is_increase]
        for update in decreases:
            self._handle_edge_update(update, pending_of, decrease=True)
        for update in increases:
            self._handle_edge_update(update, pending_of, decrease=False)
        if self._use_batch:
            self._flush_edge_prunes(pending)

        # Step 4 — query movements inside the (already pruned) tree.
        for query_state, new_location in deferred_moves:
            entry = pending_of(query_state.query_id)
            if entry.full_recompute:
                query_state.location = new_location
                continue
            self._prune_for_query_move(query_state, new_location)
            query_state.location = new_location
            entry.needs_resume = True

        # Step 5 — object updates, filtered through the influence intervals.
        for update in batch.object_updates:
            self._handle_object_update(update, pending_of)

        # Steps 6 and 7 — finalise.  The dial kernel gathers every resumed
        # search and full recomputation into one batched kernel call plus one
        # bulk influence flush; the per-query kernels finalise in place.
        if self._use_batch:
            return self._finalize_batch(pending)

        # Step 6 — finalise incrementally maintained queries.  The fast path
        # (no new expansion) is sound only when the maintained candidates
        # still provide k neighbors *within the old radius* — the region the
        # expansion tree has complete knowledge of; otherwise (an outgoing
        # neighbor created a deficit, or the best available replacement lies
        # beyond the old radius) the search resumes from the tree frontier.
        for query_id, entry in pending.items():
            if entry.full_recompute:
                continue
            query_state = self._states[query_id]
            if entry.needs_resume or (
                not query_state.is_range
                and query_state.neighbors.radius > query_state.radius + _EPS
            ):
                self._resume_search(query_state, entry)
            elif not query_state.is_range:
                self._finalize_fast_path(query_state)
            # A range query touched only by object updates is already final:
            # the maintained candidate distances are exact and the radius —
            # hence the tree and influence region — is pinned by the spec.
            if self._store_result(
                query_id, query_state.result_neighbors(), query_state.radius
            ):
                changed.add(query_id)

        # Step 7 — full recomputations (queries that left their trees or
        # whose own edge changed weight).
        for query_id, entry in pending.items():
            if not entry.full_recompute:
                continue
            query_state = self._states[query_id]
            self._fresh_search(query_state)
            if self._store_result(
                query_id, query_state.result_neighbors(), query_state.radius
            ):
                changed.add(query_id)

        return changed

    # ------------------------------------------------------------------
    # update handling
    # ------------------------------------------------------------------
    def _handle_edge_update(self, update, pending_of, decrease: bool) -> None:
        use_dial = self._use_batch
        # The zero-copy view is safe here: steps 2-5 only read the index
        # (influence entries change in the step-6/7 finalisation).
        for query_id in self._influence.subscribers_on_edge_view(update.edge_id):
            query_state = self._states.get(query_id)
            if query_state is None:
                continue
            entry = pending_of(query_id)
            if entry.full_recompute:
                continue
            if update.edge_id == query_state.location.edge_id:
                # A weight change of the query's own edge shifts the query's
                # effective position in travel-cost space; recompute.
                entry.full_recompute = True
                continue
            if use_dial:
                # Collect only; _flush_edge_prunes prunes each tree once.
                if decrease:
                    if entry.decreases is None:
                        entry.decreases = [update]
                    else:
                        entry.decreases.append(update)
                    entry.decrease_delta += update.old_weight - update.new_weight
                else:
                    if entry.increases is None:
                        entry.increases = [update]
                    else:
                        entry.increases.append(update)
            elif decrease:
                self._prune_for_edge_decrease(query_state, update)
                entry.decrease_delta += update.old_weight - update.new_weight
            else:
                self._prune_for_edge_increase(query_state, update)
            entry.needs_resume = True

    def _flush_edge_prunes(self, pending: Dict[int, _Pending]) -> None:
        """One-pass tree prune per query from its collected edge updates.

        The dial kernel's replacement for the per-(query, update) pruning of
        :meth:`_prune_for_edge_decrease` / :meth:`_prune_for_edge_increase`:
        instead of walking the tree once per affecting update, each affected
        tree is pruned in a single DFS per tick.  The walk accumulates, per
        node, the total delta of the *decreased tree edges* on its tree path
        — the batch composition of the sequential subtree shifts — and keeps
        node ``v`` at its shifted distance ``d'(v)`` iff its branch survives
        every increase and ``d'(v) <= T``, where ``T`` is the minimum over
        all collected decreases of ``min(d(start), d(end)) + new_weight``
        (pre-update distances).  Retained distances are exact:

        * ``d'(v)`` is achievable — it is the old tree path re-costed under
          the new weights (subtrees below increased tree edges are skipped
          by the walk, and non-tree edges never lie on a tree path);
        * nothing beats it — a path avoiding every decreased edge costs at
          least its old cost ``>= d_old(v) >= d'(v)``, and a path through a
          first decreased edge ``e = (a, b)`` pays at least ``d_old(a)``
          for its prefix (which uses no decreased edge, and increases only
          make it costlier) plus ``new_weight(e)``, i.e. at least ``T >=
          d'(v)``.

        ``d'`` grows along tree paths (each step adds the edge's *new*
        positive weight), so the keep-set is ancestor-closed and a branch
        can be abandoned at the first node beyond ``T``.  Nodes the
        per-update path would keep beyond ``T`` (shifted subtrees hanging
        outside the threshold) are dropped and simply re-verified by the
        resumed search — a retention-for-walks trade that cannot affect
        results.
        """
        network = self._network
        inf = float("inf")
        # Endpoints are per-edge facts: resolve each updated edge once per
        # tick instead of once per (query, update) pair.
        endpoint_cache: Dict[int, Tuple[int, int]] = {}

        def endpoints_of(edge_id: int) -> Tuple[int, int]:
            cached = endpoint_cache.get(edge_id)
            if cached is None:
                edge = network.edge(edge_id)
                cached = (edge.start, edge.end)
                endpoint_cache[edge_id] = cached
            return cached

        for query_id, entry in pending.items():
            if entry.full_recompute or (entry.decreases is None and entry.increases is None):
                continue
            query_state = self._states.get(query_id)
            if query_state is None:
                continue
            state = query_state.state
            node_dist = state.node_dist
            if not node_dist:
                continue
            node_dist_get = node_dist.get
            parent_get = state.parent.get
            threshold = inf
            shift_of_child: Dict[int, float] = {}
            for update in entry.decreases or ():
                start, end = endpoints_of(update.edge_id)
                dist_start = node_dist_get(start, inf)
                dist_end = node_dist_get(end, inf)
                bound = (
                    dist_start if dist_start < dist_end else dist_end
                ) + update.new_weight
                if bound < threshold:
                    threshold = bound
                # Inlined tree_edge_child over the already-fetched endpoints.
                if parent_get(end, _UNRESOLVED) == start:
                    shift_of_child[end] = update.old_weight - update.new_weight
                elif parent_get(start, _UNRESOLVED) == end:
                    shift_of_child[start] = update.old_weight - update.new_weight
            removed_roots: Set[int] = set()
            for update in entry.increases or ():
                start, end = endpoints_of(update.edge_id)
                if parent_get(end, _UNRESOLVED) == start:
                    removed_roots.add(end)
                elif parent_get(start, _UNRESOLVED) == end:
                    removed_roots.add(start)
            if threshold == inf and not removed_roots and not shift_of_child:
                continue
            parent_map = state.parent
            bound = threshold + _EPS
            new_dist: Dict[int, float] = {}
            new_parent: Dict[int, Optional[int]] = {}
            if not removed_roots and not shift_of_child:
                # No tree edge was updated: the keep-set is a pure distance
                # cut, which is ancestor-closed, so no tree walk is needed.
                for node_id, distance in node_dist.items():
                    if distance <= bound:
                        new_dist[node_id] = distance
                        new_parent[node_id] = parent_map[node_id]
            else:
                # Resolve each candidate's composed shift by memoized
                # parent-chain walks (ancestors of candidates are candidates,
                # so chains are short and amortize to O(candidates)); a
                # ``None`` status marks descent through a removed increase
                # subtree.  ``cutoff`` over-approximates the keep bound by
                # the maximum possible shift so most of a shredded tree is
                # skipped by one float compare.
                cutoff = bound + sum(shift_of_child.values())
                status: Dict[int, Optional[float]] = {}
                status_get = status.get
                for node_id, distance in node_dist.items():
                    if distance > cutoff:
                        continue
                    shift = status_get(node_id, _UNRESOLVED)
                    if shift is _UNRESOLVED:
                        chain = [node_id]
                        ancestor = parent_map[node_id]
                        while ancestor is not None:
                            shift = status_get(ancestor, _UNRESOLVED)
                            if shift is not _UNRESOLVED:
                                break
                            chain.append(ancestor)
                            ancestor = parent_map[ancestor]
                        if ancestor is None:
                            shift = 0.0
                        for link in reversed(chain):
                            if shift is None or link in removed_roots:
                                shift = None
                            else:
                                delta = shift_of_child.get(link)
                                if delta is not None:
                                    shift += delta
                            status[link] = shift
                    if shift is None:
                        continue
                    shifted = distance - shift
                    if shifted <= bound:
                        new_dist[node_id] = shifted
                        new_parent[node_id] = parent_map[node_id]
            state.node_dist = new_dist
            state.parent = new_parent

    def _edge_offset(self, location: NetworkLocation) -> float:
        """Travel-cost offset of *location* from its edge's start node."""
        return edge_offset(self._network, location, self._batch_csr)

    def _object_distance(
        self,
        state: ExpansionState,
        location: NetworkLocation,
        query_location: Optional[NetworkLocation] = None,
    ) -> float:
        """Kernel-dispatched :func:`object_distance_via_state` equivalent."""
        if self._use_csr:
            csr = self._batch_csr
            if csr is None:
                csr = csr_snapshot(self._network)
            return object_distance_csr(csr, state, location, query_location)
        return object_distance_via_state(self._network, state, location, query_location)

    def _handle_object_update(self, update: ObjectUpdate, pending_of) -> None:
        old_affected: Set[int] = set()
        new_affected: Set[int] = set()
        if update.old_location is not None:
            offset = self._edge_offset(update.old_location)
            old_affected = self._influence.subscribers_at_point(
                update.old_location.edge_id, offset
            )
        if update.new_location is not None:
            offset = self._edge_offset(update.new_location)
            new_affected = self._influence.subscribers_at_point(
                update.new_location.edge_id, offset
            )

        for query_id in old_affected | new_affected:
            query_state = self._states.get(query_id)
            if query_state is None:
                continue
            entry = pending_of(query_id)
            if entry.full_recompute:
                continue
            entry.object_changes = True
            if query_id in new_affected:
                assert update.new_location is not None
                distance = self._object_distance(
                    query_state.state, update.new_location, query_state.location
                )
                # Incoming or moving neighbor.  When the tree is intact the
                # distance is exact (the new position lies inside the
                # influence region, so at least one endpoint of its edge is a
                # verified node); after a pruning it may be an upper bound,
                # which the resumed search corrects.
                query_state.neighbors.assign(update.object_id, distance)
            else:
                # Outgoing neighbor: it left the influence region (or the
                # system); drop it from the candidates.
                query_state.neighbors.discard(update.object_id)

    # ------------------------------------------------------------------
    # pruning rules
    # ------------------------------------------------------------------
    def _prune_for_edge_decrease(
        self, query_state: _QueryState, update: EdgeWeightUpdate
    ) -> None:
        """Prune the tree after the weight of an affecting edge decreased.

        Exactness argument: (i) nodes in the subtree below the updated tree
        edge keep their path shape, so their distances shift down by exactly
        the weight delta; (ii) any path that benefits from the cheaper edge
        must first reach one of its endpoints without using it — paying at
        least that endpoint's old distance — and then cross it, so no node
        closer than ``min(d(start), d(end)) + new_weight`` can improve; those
        nodes are kept, everything else is discarded and re-verified by the
        resumed search.
        """
        state = query_state.state
        edge = self._network.edge(update.edge_id)
        delta = update.old_weight - update.new_weight
        child = state.tree_edge_child(edge)
        shifted: Set[int] = set()
        if child is not None:
            shifted = state.shift_subtree(child, -delta)
        threshold = (
            min(state.distance(edge.start), state.distance(edge.end))
            + update.new_weight
        )
        keep = set(shifted)
        keep.update(
            node_id
            for node_id, distance in state.node_dist.items()
            if distance <= threshold + _EPS
        )
        state.keep_only(keep)

    def _prune_for_edge_increase(
        self, query_state: _QueryState, update: EdgeWeightUpdate
    ) -> None:
        """Prune the tree after the weight of an affecting edge increased.

        The shortest paths of nodes outside the subtree below the updated
        edge never traverse it (tree paths use tree edges only), and a weight
        increase cannot create shorter alternatives, so those distances stay
        exact.  The subtree below the edge may now have cheaper paths outside
        the old tree and is discarded.
        """
        state = query_state.state
        edge = self._network.edge(update.edge_id)
        child = state.tree_edge_child(edge)
        if child is not None:
            state.prune_subtree(child)

    def _prune_for_query_move(
        self, query_state: _QueryState, new_location: NetworkLocation
    ) -> None:
        """Re-root the tree at the query's new position.

        When the new position q' lies on a tree edge, the old shortest paths
        to every node in the subtree hanging below q' pass through q', so
        that subtree stays valid with distances re-offset to start from q'
        (sub-paths of shortest paths are shortest paths).  Everything else —
        including the old result distances — is discarded and re-discovered
        by the resumed search.
        """
        state = query_state.state
        old_location = query_state.location
        network = self._network

        if new_location.edge_id == old_location.edge_id:
            edge = network.edge(new_location.edge_id)
            if abs(new_location.fraction - old_location.fraction) <= _EPS:
                return
            toward_end = new_location.fraction > old_location.fraction
            anchor = edge.end if toward_end else edge.start
            anchor_is_root_child = (
                anchor in state.node_dist and state.parent.get(anchor) is None
            )
            if anchor_is_root_child:
                new_anchor_distance = (
                    new_location.reversed_offset(edge.weight)
                    if toward_end
                    else new_location.offset(edge.weight)
                )
                state.reroot_subtree(anchor, new_anchor_distance)
            else:
                state.clear()
            return

        edge = network.edge(new_location.edge_id)
        child = state.tree_edge_child(edge)
        if child is None:
            # The new position lies on a partially covered (non-tree) edge;
            # no subtree is rooted below it, so nothing can be re-used.
            state.clear()
            return
        if child == edge.end:
            new_child_distance = new_location.reversed_offset(edge.weight)
        else:
            new_child_distance = new_location.offset(edge.weight)
        state.reroot_subtree(child, new_child_distance)

    # ------------------------------------------------------------------
    # searches
    # ------------------------------------------------------------------
    def _finalize_batch(self, pending: Dict[int, _Pending]) -> Set[int]:
        """Steps 6 and 7 in collect-then-flush form (the dial kernel).

        Gathers one :class:`~repro.core.search.ExpansionRequest` per query
        that needs a resumed or fresh expansion, runs them all through one
        :func:`~repro.core.search.expand_knn_batch` call over the batch's
        snapshot, then refreshes every touched influence region through one
        bulk :func:`~repro.core.expansion.compute_influence_maps` +
        :meth:`~repro.core.influence.InfluenceIndex.replace_subscribers`
        flush.  Per-query decisions (fast path vs resume vs full recompute)
        are identical to the per-query kernels, so the stored results are
        too.
        """
        changed: Set[int] = set()
        csr = self._batch_csr
        resume_states: List[_QueryState] = []
        fresh_states: List[_QueryState] = []
        fast_states: List[_QueryState] = []
        settled_states: List[_QueryState] = []
        requests: List[ExpansionRequest] = []
        for query_id, entry in pending.items():
            query_state = self._states[query_id]
            if entry.full_recompute:
                fresh_states.append(query_state)
                continue
            if entry.needs_resume or (
                not query_state.is_range
                and query_state.neighbors.radius > query_state.radius + _EPS
            ):
                resume_states.append(query_state)
                requests.append(self._resume_request(query_state, entry, csr))
            elif not query_state.is_range:
                fast_states.append(query_state)
            else:
                # Range fast path: object-only updates left exact candidate
                # distances and the pinned radius; only the result changes.
                settled_states.append(query_state)
        for query_state in fresh_states:
            query_state.state = ExpansionState()
            requests.append(
                ExpansionRequest(
                    k=query_state.k,
                    query_location=query_state.location,
                    fixed_radius=query_state.fixed_radius,
                )
            )

        refresh_jobs: List[tuple] = []
        if requests:
            outcomes = expand_knn_batch(
                self._network,
                self._edge_table,
                requests,
                counters=self._counters,
                csr=csr,
                kernel=self._kernel,
            )
            for query_state, outcome in zip(resume_states + fresh_states, outcomes):
                self._adopt_outcome(query_state, outcome, refresh=False)
                refresh_jobs.append(
                    (
                        query_state.query_id,
                        query_state.state,
                        query_state.radius,
                        query_state.location,
                    )
                )
        for query_state in fast_states:
            if self._finalize_fast_path(query_state, refresh=False):
                refresh_jobs.append(
                    (
                        query_state.query_id,
                        query_state.state,
                        query_state.radius,
                        query_state.location,
                    )
                )
        if refresh_jobs:
            maps = compute_influence_maps(
                self._network, refresh_jobs, csr=csr, support=self._batch_support
            )
            self._influence.replace_subscribers(maps)

        for query_state in resume_states + fast_states + settled_states + fresh_states:
            if self._store_result(
                query_state.query_id,
                query_state.result_neighbors(),
                query_state.radius,
            ):
                changed.add(query_state.query_id)
        return changed

    def _resume_candidates(
        self, query_state: _QueryState, entry: Optional[_Pending], csr: CSRGraph
    ) -> List:
        """Re-usable result candidates of a resumed search, re-distanced.

        Shared by the per-query resume path (:meth:`_resume_search`) and the
        dial kernel's batched request builder (:meth:`_resume_request`).
        When the tree survived the tick intact (pure object-update deficit)
        the maintained distances are already exact and are reused as-is;
        otherwise every surviving candidate is re-distanced against the
        pruned tree — :func:`~repro.core.expansion.object_distance_csr`
        inlined, one call per candidate being measurable on storm ticks that
        resume hundreds of queries — giving exact distances where the
        realising endpoint survived and upper bounds elsewhere (which the
        resumed expansion corrects).
        """
        state = query_state.state
        pruned = entry is not None and (entry.needs_resume or entry.move_distance > 0)
        if not pruned:
            return list(query_state.neighbors)
        candidates: List = []
        locations_get = self._edge_table.locations.get
        edge_index = csr.edge_index
        edge_weight = csr.edge_weight
        edge_start = csr.edge_start
        edge_end = csr.edge_end
        node_ids = csr.node_ids
        node_dist_get = state.node_dist.get
        query_edge = query_state.location.edge_id
        query_fraction = query_state.location.fraction
        inf = float("inf")
        for object_id, _ in query_state.neighbors:
            location = locations_get(object_id)
            if location is None:
                continue
            position = edge_index.get(location.edge_id)
            if position is None:
                # Same contract as object_distance_csr / the legacy path.
                raise EdgeNotFoundError(location.edge_id)
            weight = edge_weight[position]
            offset = location.fraction * weight
            dist_start = node_dist_get(node_ids[edge_start[position]], inf)
            dist_end = node_dist_get(node_ids[edge_end[position]], inf)
            via_start = dist_start + offset if dist_start != inf else inf
            via_end = dist_end + (weight - offset) if dist_end != inf else inf
            distance = via_start if via_start < via_end else via_end
            if location.edge_id == query_edge:
                direct = abs(location.fraction - query_fraction) * weight
                if direct < distance:
                    distance = direct
            if distance != inf:
                candidates.append((object_id, distance))
        return candidates

    def _resume_request(
        self, query_state: _QueryState, entry: Optional[_Pending], csr: CSRGraph
    ) -> ExpansionRequest:
        """Build the batched-resume request of one query (dial kernel)."""
        state = query_state.state
        return ExpansionRequest(
            k=query_state.k,
            query_location=query_state.location,
            preverified=state.node_dist,
            preverified_parent=state.parent,
            candidates=self._resume_candidates(query_state, entry, csr),
            coverage_radius=self._coverage_radius(query_state, entry),
            fixed_radius=query_state.fixed_radius,
        )

    def _fresh_search(self, query_state: _QueryState) -> None:
        """Compute the query's result from scratch (Figure 2)."""
        query_state.state = ExpansionState()
        fixed_radius = query_state.fixed_radius
        if self._use_batch:
            [outcome] = expand_knn_batch(
                self._network,
                self._edge_table,
                [
                    ExpansionRequest(
                        k=query_state.k,
                        query_location=query_state.location,
                        fixed_radius=fixed_radius,
                    )
                ],
                counters=self._counters,
                csr=self._batch_csr,
                kernel=self._kernel,
            )
        elif self._use_csr:
            outcome = expand_knn(
                self._network,
                self._edge_table,
                query_state.k,
                query_location=query_state.location,
                counters=self._counters,
                csr=self._batch_csr,
                fixed_radius=fixed_radius,
            )
        else:
            outcome = expand_knn_legacy(
                self._network,
                self._edge_table,
                query_state.k,
                query_location=query_state.location,
                counters=self._counters,
                fixed_radius=fixed_radius,
            )
        self._adopt_outcome(query_state, outcome)

    def _resume_search(
        self, query_state: _QueryState, entry: Optional[_Pending] = None
    ) -> None:
        """Resume the expansion from the valid part of the tree.

        The maintained result candidates are re-used: their distances are
        recomputed against the (possibly pruned / shifted) tree — exact when
        the realising endpoint survived the pruning, an upper bound otherwise
        (the expansion corrects upper bounds when it re-settles the pruned
        endpoints).  The candidate set is complete for every object closer
        than ``old_radius - (weight decreases) - (query movement)``, so edges
        lying entirely inside that radius need not be re-scanned; the search
        is told so through its ``coverage_radius`` parameter and only scans
        the boundary ("mark") edges plus newly explored territory.

        The expansion and the candidate re-distancing run over the batch's
        CSR snapshot; :meth:`_resume_search_legacy` preserves the dict path.
        """
        if not self._use_csr:
            return self._resume_search_legacy(query_state, entry)
        state = query_state.state
        csr = self._batch_csr
        if csr is None:
            csr = csr_snapshot(self._network)
        outcome = expand_knn(
            self._network,
            self._edge_table,
            query_state.k,
            query_location=query_state.location,
            preverified=state.node_dist,
            preverified_parent=state.parent,
            candidates=self._resume_candidates(query_state, entry, csr),
            coverage_radius=self._coverage_radius(query_state, entry),
            counters=self._counters,
            csr=csr,
            fixed_radius=query_state.fixed_radius,
        )
        self._adopt_outcome(query_state, outcome)

    def _resume_search_legacy(
        self, query_state: _QueryState, entry: Optional[_Pending] = None
    ) -> None:
        """Dict-walking resume path, kept for differential testing."""
        state = query_state.state
        pruned = entry is not None and (entry.needs_resume or entry.move_distance > 0)
        candidates = []
        for object_id, stored_distance in query_state.neighbors.all_candidates():
            if not pruned:
                candidates.append((object_id, stored_distance))
                continue
            if not self._edge_table.has_object(object_id):
                continue
            distance = object_distance_via_state(
                self._network,
                state,
                self._edge_table.location_of(object_id),
                query_state.location,
            )
            if distance != float("inf"):
                candidates.append((object_id, distance))
        outcome = expand_knn_legacy(
            self._network,
            self._edge_table,
            query_state.k,
            query_location=query_state.location,
            preverified=state.node_dist,
            preverified_parent=state.parent,
            candidates=candidates,
            coverage_radius=self._coverage_radius(query_state, entry),
            counters=self._counters,
            fixed_radius=query_state.fixed_radius,
        )
        self._adopt_outcome(query_state, outcome)

    @staticmethod
    def _coverage_radius(
        query_state: _QueryState, entry: Optional[_Pending]
    ) -> Optional[float]:
        """Radius within which the maintained candidates are still complete."""
        if query_state.radius == float("inf"):
            return None
        slack = 0.0
        if entry is not None:
            slack = entry.decrease_delta + entry.move_distance
        coverage = query_state.radius - slack
        return coverage if coverage > 0 else None

    def _adopt_outcome(self, query_state: _QueryState, outcome, refresh: bool = True) -> None:
        query_state.state = outcome.state
        query_state.radius = outcome.radius
        query_state.state.shrink_to_radius(outcome.radius)
        query_state.neighbors = NeighborList.from_pairs(
            query_state.k, outcome.neighbors
        )
        if refresh:
            self._refresh_influence(query_state)

    def _finalize_fast_path(self, query_state: _QueryState, refresh: bool = True) -> bool:
        """Finish a query affected only by object updates with enough survivors.

        The surviving and incoming candidates all carry exact distances (see
        :meth:`_handle_object_update`), so the new result is simply their
        top-k.  The radius can only have shrunk.  The tree and the influence
        intervals are trimmed only when the radius shrank substantially:
        keeping slightly-too-large intervals is safe (over-inclusive
        filtering merely processes a few irrelevant updates) and skipping the
        refresh keeps the fast path cheap — which is the point of IMA.

        Returns True when the influence region needs a refresh; with
        ``refresh=False`` (the dial kernel's flush) the caller performs it
        through the bulk path instead.
        """
        query_state.neighbors.trim_to_k()
        new_radius = query_state.neighbors.radius
        old_radius = query_state.radius
        query_state.radius = new_radius
        if new_radius < 0.9 * old_radius:
            query_state.state.shrink_to_radius(new_radius)
            if refresh:
                self._refresh_influence(query_state)
            return True
        return False

    def _refresh_influence(self, query_state: _QueryState) -> None:
        if not self._use_csr:
            return self._refresh_influence_legacy(query_state)
        influences = compute_influence_map(
            self._network,
            query_state.state,
            query_state.radius,
            query_state.location,
            csr=self._batch_csr,
            support=self._batch_support,
        )
        self._influence.replace_subscriber(query_state.query_id, influences)

    def _refresh_influence_legacy(self, query_state: _QueryState) -> None:
        """Dict-walking influence refresh, kept for differential testing."""
        influences = compute_influence_map_legacy(
            self._network,
            query_state.state,
            query_state.radius,
            query_state.location,
        )
        self._influence.replace_subscriber(query_state.query_id, influences)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def _location_within_region(
        self, query_state: _QueryState, location: NetworkLocation
    ) -> bool:
        """Is *location* within the query's current influence region?

        Uses the verified node distances; for positions inside the region the
        via-endpoint distance is exact, so the test never misclassifies an
        inside position as outside.
        """
        distance = self._object_distance(
            query_state.state, location, query_state.location
        )
        return distance <= query_state.radius + _EPS
