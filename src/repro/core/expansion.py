"""Expansion-tree state and influence-region computation.

The expansion tree of a query q (Section 3 of the paper) contains the
shortest path from q to every network node whose distance is at most
``q.kNN_dist``.  We represent it as two dictionaries:

* ``node_dist`` — the exact network distance of every verified node, and
* ``parent`` — the predecessor of each verified node on its shortest path
  (``None`` for nodes reached directly from the query's own edge).

The tree's *marks* (the points at distance exactly ``kNN_dist`` on partially
covered edges) are not materialised: they are implied by ``node_dist`` and
the radius, and the influencing intervals derived from them are computed by
:func:`compute_influence_map`.

The pruning operations used by IMA's incremental maintenance (removing the
subtree below an edge, shifting a subtree after a weight decrease,
re-rooting after a query movement, shrinking to a smaller radius) are
methods of :class:`ExpansionState`.  Each method documents why the distances
it keeps remain *exact*, which is the correctness core of the incremental
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.network.csr import CSRGraph, csr_snapshot

# dial is a leaf module (its repro.core imports are call-time), so importing
# the vectorization gate here is cycle-free and keeps it single-sourced.
from repro.network.dial import VECTOR_MIN_NODES as _VECTOR_MIN_NODES
from repro.network.graph import Edge, NetworkLocation, RoadNetwork
from repro.utils.intervals import (
    SPAN_EPS,
    Spans,
    influence_spans,
    merge_spans,
    point_distance_via_endpoints,
    point_spans,
)


@dataclass
class ExpansionState:
    """Verified node distances and shortest-path tree of one query."""

    node_dist: Dict[int, float] = field(default_factory=dict)
    parent: Dict[int, Optional[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.node_dist)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.node_dist

    def distance(self, node_id: int) -> float:
        """Distance of a verified node, or ``inf`` when not verified."""
        return self.node_dist.get(node_id, float("inf"))

    def copy(self) -> "ExpansionState":
        return ExpansionState(dict(self.node_dist), dict(self.parent))

    def clear(self) -> None:
        self.node_dist.clear()
        self.parent.clear()

    # ------------------------------------------------------------------
    # tree structure
    # ------------------------------------------------------------------
    def children_map(self) -> Dict[Optional[int], List[int]]:
        """Map each node (or ``None`` for the root) to its children."""
        children: Dict[Optional[int], List[int]] = {}
        for node_id, parent_id in self.parent.items():
            children.setdefault(parent_id, []).append(node_id)
        return children

    def subtree_nodes(self, root: int) -> Set[int]:
        """All verified nodes in the subtree rooted at *root* (inclusive).

        Returns an empty set when *root* is not a verified node.
        """
        if root not in self.node_dist:
            return set()
        children = self.children_map()
        result: Set[int] = set()
        stack = [root]
        while stack:
            node_id = stack.pop()
            if node_id in result:
                continue
            result.add(node_id)
            stack.extend(children.get(node_id, ()))
        return result

    def tree_edge_child(self, edge: Edge) -> Optional[int]:
        """If *edge* is a tree edge, return its child endpoint, else None.

        An edge is a tree edge when one endpoint is the parent of the other
        in the shortest-path tree.
        """
        if self.parent.get(edge.end, _MISSING) == edge.start:
            return edge.end
        if self.parent.get(edge.start, _MISSING) == edge.end:
            return edge.start
        return None

    def root_children(self) -> List[int]:
        """Nodes reached directly from the query's own edge (parent None)."""
        return [node_id for node_id, parent_id in self.parent.items() if parent_id is None]

    # ------------------------------------------------------------------
    # pruning operations (IMA maintenance)
    # ------------------------------------------------------------------
    def prune_nodes(self, nodes: Iterable[int]) -> int:
        """Remove *nodes* (and nothing else) from the state.

        Callers pass complete subtrees; any child left behind whose parent
        was removed is re-parented to ``None`` only if it is kept on purpose
        (this does not happen for complete-subtree pruning, but defensive
        re-parenting keeps the structure consistent if it ever does).
        Returns the number of nodes removed.
        """
        removed = 0
        node_set = set(nodes)
        for node_id in node_set:
            if node_id in self.node_dist:
                del self.node_dist[node_id]
                self.parent.pop(node_id, None)
                removed += 1
        # Defensive re-parenting of orphans.
        for node_id, parent_id in list(self.parent.items()):
            if parent_id is not None and parent_id not in self.node_dist:
                self.parent[node_id] = None
        return removed

    def keep_only(self, nodes: Iterable[int]) -> None:
        """Keep exactly the given verified nodes, pruning everything else."""
        keep = set(nodes) & set(self.node_dist)
        self.node_dist = {n: d for n, d in self.node_dist.items() if n in keep}
        self.parent = {
            n: (p if p in keep else None) for n, p in self.parent.items() if n in keep
        }

    def prune_subtree(self, root: int) -> Set[int]:
        """Remove the subtree rooted at *root*; return the removed node set.

        Used for edge-weight increases: when the weight of tree edge (u, v)
        with child v grows, the shortest paths to every node below v may have
        cheaper alternatives outside the old tree, so the whole subtree is
        discarded (the rest of the tree never used that edge and stays exact).
        """
        subtree = self.subtree_nodes(root)
        self.prune_nodes(subtree)
        return subtree

    def shift_subtree(self, root: int, delta: float) -> Set[int]:
        """Add *delta* to the distance of every node in the subtree of *root*.

        Used for edge-weight decreases: the paths to the nodes below the
        updated tree edge keep their shape and simply become cheaper by the
        weight delta, so their shifted distances remain exact (any competing
        path either avoids the edge — unchanged length, previously longer —
        or uses it and enjoys exactly the same discount).
        """
        subtree = self.subtree_nodes(root)
        for node_id in subtree:
            self.node_dist[node_id] += delta
        return subtree

    def shrink_to_radius(self, radius: float) -> int:
        """Drop verified nodes farther than *radius*; return how many."""
        if radius == float("inf"):
            return 0
        to_remove = [n for n, d in self.node_dist.items() if d > radius + 1e-12]
        return self.prune_nodes(to_remove)

    def reroot_subtree(self, new_root: int, new_root_distance: float) -> None:
        """Keep only the subtree of *new_root* and re-offset its distances.

        Used when a query moves to a new position q' on a tree edge: the old
        shortest paths to the nodes below the far endpoint of that edge pass
        through q', so for those nodes the path suffix starting at q' is
        still optimal (sub-paths of shortest paths are shortest paths) and
        the new distance is ``old_distance - old(new_root) + new_root_distance``.
        """
        if new_root not in self.node_dist:
            self.clear()
            return
        offset = new_root_distance - self.node_dist[new_root]
        keep = self.subtree_nodes(new_root)
        self.keep_only(keep)
        for node_id in keep:
            self.node_dist[node_id] += offset
        self.parent[new_root] = None

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """Rough memory footprint used by the Figure-18 experiments.

        Counts one (node id, distance, parent) record per verified node at
        24 bytes, mirroring how the paper accounts for expansion-tree size
        rather than measuring CPython object overhead.
        """
        return 24 * len(self.node_dist)


_MISSING = object()


def compute_influence_map_legacy(
    network: RoadNetwork,
    state: ExpansionState,
    radius: float,
    query_location: Optional[NetworkLocation] = None,
) -> Dict[int, Spans]:
    """Dict-walking reference implementation of :func:`compute_influence_map`.

    Kept verbatim from before the CSR port for differential testing: it must
    produce exactly the same ``edge_id -> spans`` mapping as the flat-array
    version (the spans are pure functions of the same endpoint distances).
    """
    influences: Dict[int, Spans] = {}
    seen_edges: Set[int] = set()
    node_dist = state.node_dist

    for node_id, dist in node_dist.items():
        if dist > radius:
            continue
        for edge_id in network.incident_edges(node_id):
            if edge_id in seen_edges:
                continue
            seen_edges.add(edge_id)
            edge = network.edge(edge_id)
            spans = influence_spans(
                edge.weight,
                node_dist.get(edge.start, float("inf")),
                node_dist.get(edge.end, float("inf")),
                radius,
            )
            if spans:
                influences[edge_id] = spans

    if query_location is not None:
        edge = network.edge(query_location.edge_id)
        own = point_spans(edge.weight, query_location.offset(edge.weight), radius)
        endpoint_based = influence_spans(
            edge.weight,
            node_dist.get(edge.start, float("inf")),
            node_dist.get(edge.end, float("inf")),
            radius,
        )
        combined = merge_spans(own, endpoint_based)
        if combined:
            influences[query_location.edge_id] = combined

    return influences


def compute_influence_maps(
    network: RoadNetwork,
    jobs: List[tuple],
    csr: Optional["CSRGraph"] = None,
    support=None,
) -> Dict[object, Dict[int, Spans]]:
    """Batched :func:`compute_influence_map`: one call per flushed tick.

    *jobs* is a list of ``(key, state, radius, query_location)`` tuples; the
    result maps each *key* to its influence map.  One snapshot refresh and
    one :meth:`~repro.network.csr.CSRGraph.dial_support` lookup are shared
    by the whole batch, and every job with a finite radius and a
    large-enough tree runs through the numpy-vectorized span computation of
    :mod:`repro.network.dial`.
    """
    if csr is None:
        csr = csr_snapshot(network)
    if support is None:
        support = csr.dial_support()
    return {
        key: compute_influence_map(
            network, state, radius, query_location, csr=csr, support=support
        )
        for key, state, radius, query_location in jobs
    }


def compute_influence_map(
    network: RoadNetwork,
    state: ExpansionState,
    radius: float,
    query_location: Optional[NetworkLocation] = None,
    csr: Optional["CSRGraph"] = None,
    support=None,
) -> Dict[int, Spans]:
    """Influencing intervals of every edge affected by a query.

    An edge affects the query when some point on it lies within *radius*.
    All such edges have at least one endpoint among the verified nodes (any
    point within the radius is reached through one of its edge's endpoints,
    whose distance is then also within the radius), so it suffices to scan
    the edges incident to verified nodes, plus the query's own edge.

    Distances of points are computed with the ``min`` formula over the two
    endpoint distances; for one-way edges this may overestimate the
    influence region (never underestimate it), which keeps update filtering
    conservative and therefore correct.

    The edge walk runs over the CSR snapshot's incidence columns (pass a
    pre-refreshed *csr* to skip the per-call staleness check); the dict-based
    original is preserved as :func:`compute_influence_map_legacy`.  When a
    :class:`~repro.network.dial.DialSupport` with numpy mirrors is supplied
    (the dial kernel's flush path), large finite-radius trees run through
    :func:`~repro.network.dial.influence_spans_vectorized`, whose span
    arithmetic is element-wise identical to the scalar loop below.
    """
    if csr is None:
        csr = csr_snapshot(network)
    node_dist = state.node_dist
    if (
        support is not None
        and support.has_numpy
        and radius != float("inf")
        and len(node_dist) >= _VECTOR_MIN_NODES
    ):
        from repro.network.dial import influence_spans_vectorized

        influences = influence_spans_vectorized(csr, support, node_dist, radius)
        return _overlay_query_edge(csr, node_dist, radius, query_location, influences)
    node_index = csr.node_index
    node_ids = csr.node_ids
    inc_indptr = csr.inc_indptr
    inc_edge = csr.inc_edge
    edge_ids = csr.edge_ids
    edge_weight = csr.edge_weight
    edge_start = csr.edge_start
    edge_end = csr.edge_end
    node_dist_get = node_dist.get
    inf = float("inf")

    influences: Dict[int, Spans] = {}
    scratch = csr.acquire_edge_scratch()
    seen = scratch.seen
    touched: List[int] = []
    finite_radius = radius != inf
    try:
        for node_id, dist in node_dist.items():
            if dist > radius:
                continue
            u = node_index[node_id]
            for slot in range(inc_indptr[u], inc_indptr[u + 1]):
                position = inc_edge[slot]
                if seen[position]:
                    continue
                seen[position] = 1
                touched.append(position)
                weight = edge_weight[position]
                dist_start = node_dist_get(node_ids[edge_start[position]], inf)
                dist_end = node_dist_get(node_ids[edge_end[position]], inf)
                if finite_radius:
                    # influence_spans() inlined: one span grows from each
                    # endpoint whose distance is within the radius; the two
                    # merge into a full-edge span when they meet.
                    if dist_start <= radius:
                        reach = radius - dist_start
                        low_piece = (0.0, weight if weight < reach else reach)
                        if dist_end <= radius:
                            reach = radius - dist_end
                            anchor = weight - reach
                            if anchor <= low_piece[1] + SPAN_EPS:
                                spans: Spans = ((0.0, weight),)
                            else:
                                spans = (
                                    low_piece,
                                    (anchor if anchor > 0.0 else 0.0, weight),
                                )
                        else:
                            spans = (low_piece,)
                    elif dist_end <= radius:
                        reach = radius - dist_end
                        anchor = weight - reach
                        spans = ((anchor if anchor > 0.0 else 0.0, weight),)
                    else:
                        continue
                else:
                    spans = influence_spans(weight, dist_start, dist_end, radius)
                    if not spans:
                        continue
                influences[edge_ids[position]] = spans
    finally:
        scratch.release(touched)

    return _overlay_query_edge(csr, node_dist, radius, query_location, influences)


def _overlay_query_edge(
    csr: "CSRGraph",
    node_dist: Dict[int, float],
    radius: float,
    query_location: Optional[NetworkLocation],
    influences: Dict[int, Spans],
) -> Dict[int, Spans]:
    """Merge the query's own-edge spans into *influences* (shared postlude)."""
    if query_location is not None:
        position = csr.index_of_edge(query_location.edge_id)
        weight = csr.edge_weight[position]
        node_ids = csr.node_ids
        node_dist_get = node_dist.get
        inf = float("inf")
        own = point_spans(weight, query_location.fraction * weight, radius)
        endpoint_based = influence_spans(
            weight,
            node_dist_get(node_ids[csr.edge_start[position]], inf),
            node_dist_get(node_ids[csr.edge_end[position]], inf),
            radius,
        )
        combined = merge_spans(own, endpoint_based)
        if combined:
            influences[query_location.edge_id] = combined

    return influences


def object_distance_via_state(
    network: RoadNetwork,
    state: ExpansionState,
    location: NetworkLocation,
    query_location: Optional[NetworkLocation] = None,
) -> float:
    """Distance of an object location using the verified node distances.

    Returns the minimum of the distances through the two endpoints of the
    object's edge (infinite when neither endpoint is verified) and, when the
    object shares the query's edge, the direct along-edge distance.  For
    objects inside the influence region this value is exact (see the
    incoming-object argument in :mod:`repro.core.ima`); outside it, it is an
    upper bound.

    This is the dict-walking reference; the monitoring hot paths use
    :func:`object_distance_csr`, which computes the identical value off the
    flat-array snapshot.
    """
    edge = network.edge(location.edge_id)
    offset = location.offset(edge.weight)
    distance = point_distance_via_endpoints(
        edge.weight, offset, state.distance(edge.start), state.distance(edge.end)
    )
    if query_location is not None and query_location.edge_id == location.edge_id:
        direct = abs(location.fraction - query_location.fraction) * edge.weight
        distance = min(distance, direct)
    return distance


def edge_offset(
    network: RoadNetwork, location: NetworkLocation, csr: Optional["CSRGraph"] = None
) -> float:
    """Travel-cost offset of *location* from its edge's start node.

    The kernel-dispatched helper behind the monitors' update filtering:
    reads the weight off the CSR columns when a snapshot is supplied, off
    the network's edge record otherwise.
    """
    if csr is not None:
        return location.fraction * csr.edge_weight[csr.index_of_edge(location.edge_id)]
    return location.offset(network.edge(location.edge_id).weight)


def object_distance_csr(
    csr: "CSRGraph",
    state: ExpansionState,
    location: NetworkLocation,
    query_location: Optional[NetworkLocation] = None,
) -> float:
    """Flat-array version of :func:`object_distance_via_state` (hot path).

    Identical semantics and arithmetic; the edge endpoints and weight come
    from the CSR columns instead of an :class:`~repro.network.graph.Edge`
    dataclass lookup.
    """
    position = csr.index_of_edge(location.edge_id)
    weight = csr.edge_weight[position]
    node_ids = csr.node_ids
    node_dist_get = state.node_dist.get
    inf = float("inf")
    offset = location.fraction * weight
    dist_start = node_dist_get(node_ids[csr.edge_start[position]], inf)
    dist_end = node_dist_get(node_ids[csr.edge_end[position]], inf)
    via_start = dist_start + offset if dist_start != inf else inf
    via_end = dist_end + (weight - offset) if dist_end != inf else inf
    distance = via_start if via_start < via_end else via_end
    if query_location is not None and query_location.edge_id == location.edge_id:
        direct = abs(location.fraction - query_location.fraction) * weight
        if direct < distance:
            distance = direct
    return distance
