"""Multi-tenant query deduplication: N logical subscribers, one physical query.

Real monitoring traffic is massively redundant: at a popular venue,
thousands of tenants install the *same* continuous query — identical kind,
identical parameters, same (or nearly same) position on the same edge.  The
paper's algorithms (and the :class:`~repro.core.server.MonitoringServer`
built on them) treat every query as independent, paying one expansion tree,
one influence-region subscription and one per-tick maintenance pass per
tenant.

:class:`DedupFrontend` removes that redundancy *in front of* a server.  It
maps every logical query to a **canonical key** — ``(spec, edge, snapped
fraction)`` — and keeps one reference-counted *dedup group* per key.  Only
the first subscriber of a key installs a **physical query** on the wrapped
server; later subscribers join the group for free, and results fan back out
by relabeling the physical result with each subscriber's own query id.  A
subscriber leaving decrements the group; the physical query is terminated
only when the *last* subscriber leaves, so one tenant's departure can never
kill another tenant's results.

Canonicalization semantics:

* ``snap_tolerance=0.0`` (the default) groups only queries at the *exact*
  same :class:`~repro.network.graph.NetworkLocation` — results are then
  identical to running every logical query individually, because the
  physical query sits at precisely the shared position.
* ``snap_tolerance=t > 0`` buckets edge fractions into windows of width
  ``t`` (in fraction-of-edge units): queries whose specs match and whose
  fractions fall into the same window share one physical query anchored at
  the *first* subscriber's position.  Results are then approximate within
  ``t * edge_weight`` of each subscriber's true position — the knob trades
  exactness for sharing on long edges.

A location or spec change routes through the cheapest correct path: a move
that stays inside the query's own canonical bucket is pure bookkeeping; a
sole subscriber moving to an unoccupied key rides the server's incremental
``move_query`` path (the monitors' tree-repair machinery); everything else
— a subscriber splitting out of a shared group, or landing on an occupied
key — is a reference-counted leave + join.

Example::

    from repro import DedupFrontend, MonitoringServer, city_network

    network = city_network(400, seed=7)
    frontend = DedupFrontend(MonitoringServer(network, algorithm="ima"))
    frontend.add_object(1, location)
    frontend.add_query(100, venue, k=2)       # installs one physical query
    frontend.add_query(101, venue, k=2)       # joins the same group
    frontend.tick()
    assert frontend.result_of(101).query_id == 101
    frontend.remove_query(100)                # 101 keeps its results
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import count
from math import floor, isfinite
from typing import Dict, Optional, Set, Tuple, Union

from repro.core.base import TimestepReport
from repro.core.events import UpdateBatch
from repro.core.queries import QuerySpec, as_query_spec
from repro.core.results import KnnResult
from repro.exceptions import (
    DuplicateQueryError,
    InvalidQueryError,
    MonitoringError,
    UnknownQueryError,
)
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork


@dataclass(frozen=True)
class DedupStats:
    """Snapshot of a :class:`DedupFrontend`'s sharing effectiveness.

    Attributes:
        logical_queries: live logical (subscriber) queries.
        physical_queries: live physical queries on the wrapped server —
            equal to the number of dedup groups.
        largest_group: subscriber count of the biggest dedup group (0 when
            no queries are live).
        deduped_installs: cumulative installs served by joining an existing
            group instead of installing a physical query.
        physical_installs: cumulative physical queries installed on the
            wrapped server.
        physical_moves: cumulative sole-subscriber moves that rode the
            incremental ``move_query`` path.

    Example::

        stats = frontend.dedup_stats()
        print(stats.logical_queries / max(stats.physical_queries, 1))
    """

    logical_queries: int
    physical_queries: int
    largest_group: int
    deduped_installs: int
    physical_installs: int
    physical_moves: int


@dataclass
class _DedupGroup:
    """One canonical query: a physical id, its anchor, and its subscribers."""

    physical_id: int
    key: Tuple[QuerySpec, int, float]
    location: NetworkLocation
    subscribers: Set[int]


class DedupFrontend:
    """Reference-counted query-dedup layer over a monitoring server.

    Wraps any object with the :class:`~repro.core.server.MonitoringServer`
    surface — the in-process server or a
    :class:`~repro.core.sharding.ShardedMonitoringServer` — and exposes the
    same update/tick/result API for *logical* query ids while the wrapped
    server only ever sees deduplicated *physical* ids.  Physical ids come
    from a private counter and are never reused, so a group dying and a new
    one forming at the same key within one tick reach the server as a plain
    terminate + install pair (never a same-id collapse).

    Data-object and edge-weight updates pass straight through.  Between a
    logical install and the next :meth:`tick`, :meth:`result_of` raises
    :class:`~repro.exceptions.UnknownQueryError` exactly like the plain
    server does for its own pending installations.

    Example::

        frontend = DedupFrontend(MonitoringServer(network, "ima"), snap_tolerance=0.0)
        frontend.add_query(100, location, k=2)
        frontend.tick()
        print(frontend.result_of(100).neighbors)
    """

    def __init__(self, server, snap_tolerance: float = 0.0) -> None:
        """Wrap *server*; group queries within *snap_tolerance* of each other.

        Args:
            server: the monitoring server to deduplicate in front of.  The
                frontend takes ownership: drive all updates and ticks
                through the frontend (mixing direct server calls in would
                desynchronize the fanout table).
            snap_tolerance: canonical-location bucket width in
                fraction-of-edge units; ``0.0`` (default) requires exact
                location equality and keeps results exact.
        """
        if not isfinite(snap_tolerance) or snap_tolerance < 0:
            raise MonitoringError(
                f"snap_tolerance must be finite and >= 0, got {snap_tolerance!r}"
            )
        self._server = server
        self._snap_tolerance = float(snap_tolerance)
        self._groups: Dict[Tuple[QuerySpec, int, float], _DedupGroup] = {}
        self._group_of: Dict[int, _DedupGroup] = {}
        self._group_by_pid: Dict[int, _DedupGroup] = {}
        self._spec_of: Dict[int, QuerySpec] = {}
        self._location_of: Dict[int, NetworkLocation] = {}
        #: logical ids installed since the last tick (result_of raises, and
        #: the next report lists them as changed — plain-server parity)
        self._installed_pending: Set[int] = set()
        #: logical ids that changed group since the last tick (their result
        #: may change even when neither physical result did)
        self._rebound_pending: Set[int] = set()
        self._next_physical_id = count(1)
        self._deduped_installs = 0
        self._physical_installs = 0
        self._physical_moves = 0

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def server(self):
        """The wrapped monitoring server (physical-id view)."""
        return self._server

    @property
    def snap_tolerance(self) -> float:
        """The canonical-location bucket width (fraction-of-edge units)."""
        return self._snap_tolerance

    @property
    def network(self) -> RoadNetwork:
        """The wrapped server's road network."""
        return self._server.network

    @property
    def edge_table(self) -> EdgeTable:
        """The wrapped server's edge table."""
        return self._server.edge_table

    @property
    def current_timestamp(self) -> int:
        """The timestamp the next :meth:`tick` will process."""
        return self._server.current_timestamp

    # ------------------------------------------------------------------
    # canonicalization
    # ------------------------------------------------------------------
    def canonical_key(
        self, location: NetworkLocation, spec: QuerySpec
    ) -> Tuple[QuerySpec, int, float]:
        """The dedup-group key of a query at *location* with *spec*.

        Two queries share a physical query iff their keys are equal: same
        spec (kind and all parameters), same edge, and — with a positive
        :attr:`snap_tolerance` — edge fractions in the same bucket window
        (exact fraction equality when the tolerance is 0).

        Example::

            key = frontend.canonical_key(location, QuerySpec.knn(2))
        """
        if self._snap_tolerance > 0.0:
            bucket = float(floor(location.fraction / self._snap_tolerance))
        else:
            bucket = location.fraction
        return (spec, location.edge_id, bucket)

    # ------------------------------------------------------------------
    # data objects and edges: straight passthrough
    # ------------------------------------------------------------------
    def add_object(self, object_id: int, location: NetworkLocation) -> None:
        """Register a new data object (takes effect at the next tick)."""
        self._server.add_object(object_id, location)

    def move_object(self, object_id: int, new_location: NetworkLocation) -> None:
        """Report a data-object movement (takes effect at the next tick)."""
        self._server.move_object(object_id, new_location)

    def remove_object(self, object_id: int) -> None:
        """Report that a data object disappeared."""
        self._server.remove_object(object_id)

    def object_ids(self) -> Set[int]:
        """Ids of every registered data object (including pending adds)."""
        return self._server.object_ids()

    def update_edge_weight(self, edge_id: int, new_weight: float) -> None:
        """Report an edge-weight change, e.g. from a traffic sensor."""
        self._server.update_edge_weight(edge_id, new_weight)

    # ------------------------------------------------------------------
    # logical queries
    # ------------------------------------------------------------------
    def add_query(
        self, query_id: int, location: NetworkLocation, k: Union[int, QuerySpec]
    ) -> None:
        """Install a logical query (dedup-aware; effective at the next tick)."""
        if query_id in self._spec_of:
            raise DuplicateQueryError(query_id)
        spec = as_query_spec(k)
        if spec is None:
            raise InvalidQueryError(f"query {query_id} needs a k or QuerySpec")
        self.network.validate_location(location)
        for point in spec.points:
            self.network.validate_location(point)
        self._subscribe(query_id, location, spec)
        self._installed_pending.add(query_id)

    def move_query(self, query_id: int, new_location: NetworkLocation) -> None:
        """Report a logical query movement (takes effect at the next tick)."""
        if query_id not in self._spec_of:
            raise UnknownQueryError(query_id)
        self.network.validate_location(new_location)
        self._relocate(query_id, new_location, self._spec_of[query_id])

    def remove_query(self, query_id: int) -> None:
        """Terminate a logical query (the group's physical query survives
        until its last subscriber leaves)."""
        if query_id not in self._spec_of:
            raise UnknownQueryError(query_id)
        self._unsubscribe(query_id)
        self._installed_pending.discard(query_id)
        self._rebound_pending.discard(query_id)

    def query_ids(self) -> Set[int]:
        """Ids of every logical query (including pending installations)."""
        return set(self._spec_of)

    def query_spec_of(self, query_id: int) -> QuerySpec:
        """The :class:`QuerySpec` of a logical query (typed error on miss)."""
        try:
            return self._spec_of[query_id]
        except KeyError as exc:
            raise UnknownQueryError(query_id) from exc

    def query_location_of(self, query_id: int) -> NetworkLocation:
        """The exact (pre-snap) location of a logical query."""
        try:
            return self._location_of[query_id]
        except KeyError as exc:
            raise UnknownQueryError(query_id) from exc

    # ------------------------------------------------------------------
    # group bookkeeping
    # ------------------------------------------------------------------
    def _subscribe(
        self, query_id: int, location: NetworkLocation, spec: QuerySpec
    ) -> None:
        """Join (or create) the dedup group of ``(location, spec)``."""
        key = self.canonical_key(location, spec)
        group = self._groups.get(key)
        if group is None:
            physical_id = next(self._next_physical_id)
            self._server.add_query(physical_id, location, spec)
            group = _DedupGroup(physical_id, key, location, set())
            self._groups[key] = group
            self._group_by_pid[physical_id] = group
            self._physical_installs += 1
        else:
            self._deduped_installs += 1
        group.subscribers.add(query_id)
        self._group_of[query_id] = group
        self._spec_of[query_id] = spec
        self._location_of[query_id] = location

    def _unsubscribe(self, query_id: int) -> None:
        """Leave the group; terminate the physical query on refcount zero."""
        group = self._group_of.pop(query_id)
        group.subscribers.discard(query_id)
        del self._spec_of[query_id]
        del self._location_of[query_id]
        if not group.subscribers:
            del self._groups[group.key]
            del self._group_by_pid[group.physical_id]
            self._server.remove_query(group.physical_id)

    def _relocate(
        self, query_id: int, new_location: NetworkLocation, spec: QuerySpec
    ) -> None:
        """Move (and possibly respec) a logical query via the cheapest path."""
        group = self._group_of[query_id]
        new_key = self.canonical_key(new_location, spec)
        if new_key == group.key:
            # Same canonical bucket: the physical query stays put.  With a
            # zero tolerance the key carries the exact fraction, so this is
            # only ever a true no-op move.
            self._location_of[query_id] = new_location
            return
        if (
            len(group.subscribers) == 1
            and spec == self._spec_of[query_id]
            and new_key not in self._groups
        ):
            # Sole subscriber, unchanged spec, unoccupied destination: keep
            # the physical query and ride the incremental movement path.
            del self._groups[group.key]
            group.key = new_key
            group.location = new_location
            self._groups[new_key] = group
            self._server.move_query(group.physical_id, new_location)
            self._physical_moves += 1
            self._location_of[query_id] = new_location
            self._rebound_pending.add(query_id)
            return
        # Split out of a shared group / merge into an existing one / change
        # spec: a reference-counted leave + join.
        pending_install = query_id in self._installed_pending
        self._unsubscribe(query_id)
        self._subscribe(query_id, new_location, spec)
        if not pending_install:
            self._rebound_pending.add(query_id)

    # ------------------------------------------------------------------
    # batched ingestion
    # ------------------------------------------------------------------
    def apply_updates(self, batch: UpdateBatch) -> None:
        """Buffer a pre-built :class:`UpdateBatch` through the dedup layer.

        Query updates are normalized first (the Section 4.5 same-tick
        collapse) and dispatched through the reference-counted group
        machinery — a normalized movement carrying a changed spec becomes a
        leave + join, mirroring the monitors' split-back.  Object and edge
        updates ride through to the wrapped server unchanged, and are
        validated by it before any query update is applied.

        Raises:
            DuplicateQueryError / UnknownQueryError (and the wrapped
            server's object/edge errors): on id misuse; query updates are
            validated against the logical registry before anything is
            dispatched.
        """
        normalized = batch.normalized()
        added: Set[int] = set()
        removed: Set[int] = set()
        for update in normalized.query_updates:
            known = (
                update.query_id in self._spec_of or update.query_id in added
            ) and update.query_id not in removed
            if update.is_installation:
                if known:
                    raise DuplicateQueryError(update.query_id)
                added.add(update.query_id)
                removed.discard(update.query_id)
            else:
                if not known:
                    raise UnknownQueryError(update.query_id)
                if update.is_termination:
                    removed.add(update.query_id)
                    added.discard(update.query_id)
            if update.new_location is not None:
                self.network.validate_location(update.new_location)
            if update.spec is not None:
                for point in update.spec.points:
                    self.network.validate_location(point)
        passthrough = UpdateBatch(
            timestamp=normalized.timestamp,
            object_updates=normalized.object_updates,
            edge_updates=normalized.edge_updates,
        )
        self._server.apply_updates(passthrough)
        for update in normalized.query_updates:
            if update.is_installation:
                self._subscribe(update.query_id, update.new_location, update.spec)
                self._installed_pending.add(update.query_id)
            elif update.is_termination:
                self._unsubscribe(update.query_id)
                self._installed_pending.discard(update.query_id)
                self._rebound_pending.discard(update.query_id)
            else:
                spec = (
                    update.spec
                    if update.spec is not None
                    else self._spec_of[update.query_id]
                )
                self._relocate(update.query_id, update.new_location, spec)

    # ------------------------------------------------------------------
    # processing and results
    # ------------------------------------------------------------------
    def tick(self) -> TimestepReport:
        """Process one timestamp on the wrapped server and fan results out.

        The returned report carries *logical* ids: every subscriber of a
        physical query the server reported as changed, plus the logical
        queries installed or regrouped since the last tick.
        """
        report = self._server.tick()
        changed: Set[int] = set()
        for physical_id in report.changed_queries:
            group = self._group_by_pid.get(physical_id)
            if group is not None:
                changed.update(group.subscribers)
        changed.update(q for q in self._installed_pending if q in self._group_of)
        changed.update(q for q in self._rebound_pending if q in self._group_of)
        self._installed_pending.clear()
        self._rebound_pending.clear()
        return TimestepReport(
            timestamp=report.timestamp,
            elapsed_seconds=report.elapsed_seconds,
            changed_queries=changed,
            counters=report.counters,
        )

    def result_of(self, query_id: int) -> KnnResult:
        """Current result of a logical query, relabeled with its own id."""
        if query_id in self._installed_pending:
            raise UnknownQueryError(query_id)
        group = self._group_of.get(query_id)
        if group is None:
            raise UnknownQueryError(query_id)
        return replace(self._server.result_of(group.physical_id), query_id=query_id)

    def results(self) -> Dict[int, KnnResult]:
        """Current results of every logical query (after the last tick)."""
        physical = self._server.results()
        fanned: Dict[int, KnnResult] = {}
        for group in self._groups.values():
            result = physical.get(group.physical_id)
            if result is None:
                continue  # the physical installation is still pending
            for query_id in group.subscribers:
                if query_id not in self._installed_pending:
                    fanned[query_id] = replace(result, query_id=query_id)
        return fanned

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def dedup_stats(self) -> DedupStats:
        """A :class:`DedupStats` snapshot of the current sharing state.

        Example::

            stats = frontend.dedup_stats()
            assert stats.physical_queries <= stats.logical_queries
        """
        return DedupStats(
            logical_queries=len(self._spec_of),
            physical_queries=len(self._groups),
            largest_group=max(
                (len(group.subscribers) for group in self._groups.values()),
                default=0,
            ),
            deduped_installs=self._deduped_installs,
            physical_installs=self._physical_installs,
            physical_moves=self._physical_moves,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the wrapped server (idempotent)."""
        self._server.close()

    def __enter__(self) -> "DedupFrontend":
        """Enter a context that guarantees :meth:`close` on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the wrapped server when the ``with`` block ends."""
        self.close()
