"""k-NN result containers.

The monitoring algorithms manipulate a *candidate list* of data objects with
tentative network distances (some exact, some upper bounds) and repeatedly
ask for the current *radius* — the distance of the k-th best candidate,
which is the paper's ``q.kNN_dist`` and the termination bound of every
network expansion.  :class:`NeighborList` provides exactly that interface;
:class:`KnnResult` is the immutable, sorted answer handed back to callers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidQueryError

#: An ``(object_id, distance)`` pair.
Neighbor = Tuple[int, float]


@dataclass(frozen=True)
class KnnResult:
    """Immutable k-NN answer of one query at one timestamp.

    Attributes:
        query_id: the query this answer belongs to.
        k: the number of neighbors requested.
        neighbors: up to ``k`` ``(object_id, distance)`` pairs sorted by
            distance (ties broken by object id for determinism).
        radius: the distance of the k-th neighbor, or ``inf`` when fewer
            than ``k`` objects are reachable (the paper's ``kNN_dist``).

    Example::

        result = server.result_of(100)
        print(result.object_ids, result.radius)
    """

    query_id: int
    k: int
    neighbors: Tuple[Neighbor, ...]
    radius: float

    @property
    def object_ids(self) -> Tuple[int, ...]:
        """The neighbor object ids in rank order."""
        return tuple(object_id for object_id, _ in self.neighbors)

    @property
    def is_complete(self) -> bool:
        """True when the full k neighbors were found."""
        return len(self.neighbors) >= self.k

    def distance_of(self, object_id: int) -> Optional[float]:
        """Distance of *object_id* in this result, or None if absent."""
        for candidate, distance in self.neighbors:
            if candidate == object_id:
                return distance
        return None

    def same_objects(self, other: "KnnResult") -> bool:
        """True when both results contain the same object ids (any order)."""
        return set(self.object_ids) == set(other.object_ids)


class NeighborList:
    """Mutable candidate list with an O(1) amortised radius query.

    Stores at most one distance per object (the minimum of all distances it
    was offered).  ``radius`` is the distance of the k-th smallest candidate
    or infinity when fewer than k candidates exist; it is recomputed lazily
    and cached between mutations.
    """

    __slots__ = ("_k", "_distances", "_radius", "_dirty")

    def __init__(self, k: int, initial: Iterable[Neighbor] = ()) -> None:
        if k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {k}")
        self._k = k
        self._distances: Dict[int, float] = {}
        self._radius = float("inf")
        self._dirty = True
        for object_id, distance in initial:
            self.offer(object_id, distance)

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._distances)

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._distances

    def __iter__(self) -> Iterator[Neighbor]:
        return iter(self._distances.items())

    @property
    def k(self) -> int:
        """The number of neighbors this list ranks."""
        return self._k

    @classmethod
    def from_pairs(cls, k: int, pairs: Iterable[Neighbor]) -> "NeighborList":
        """Build a list from pairs holding one distance per distinct object.

        The hot-path constructor used when adopting a search outcome: the
        expansion already guarantees one exact distance per object id, so
        the per-:meth:`offer` minimum bookkeeping is skipped.
        """
        instance = cls(k)
        instance._distances = dict(pairs)
        return instance

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def offer(self, object_id: int, distance: float) -> bool:
        """Offer a candidate; keep the smaller distance if already present.

        Returns True when the stored distance changed.
        """
        current = self._distances.get(object_id)
        if current is not None and distance >= current:
            return False
        self._distances[object_id] = distance
        self._dirty = True
        return True

    def assign(self, object_id: int, distance: float) -> None:
        """Set the distance of a candidate unconditionally (overwrite)."""
        self._distances[object_id] = distance
        self._dirty = True

    def discard(self, object_id: int) -> bool:
        """Remove a candidate; returns True if it was present."""
        if object_id in self._distances:
            del self._distances[object_id]
            self._dirty = True
            return True
        return False

    def clear(self) -> None:
        """Drop every candidate."""
        self._distances.clear()
        self._dirty = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def radius(self) -> float:
        """Distance of the k-th best candidate (``inf`` if fewer than k)."""
        if self._dirty:
            self._recompute_radius()
        return self._radius

    def distance_of(self, object_id: int) -> Optional[float]:
        """Stored distance of a candidate, or None if absent."""
        return self._distances.get(object_id)

    def top_k(self) -> List[Neighbor]:
        """The best ``k`` candidates sorted by (distance, object id)."""
        return heapq.nsmallest(
            self._k, self._distances.items(), key=lambda item: (item[1], item[0])
        )

    def all_candidates(self) -> List[Neighbor]:
        """Every candidate sorted by (distance, object id)."""
        return sorted(self._distances.items(), key=lambda item: (item[1], item[0]))

    def as_result(self, query_id: int) -> KnnResult:
        """Freeze the current top-k into a :class:`KnnResult`."""
        top = self.top_k()
        return KnnResult(
            query_id=query_id,
            k=self._k,
            neighbors=tuple(top),
            radius=self.radius,
        )

    def trim_to_k(self) -> None:
        """Drop every candidate beyond the current top-k."""
        top = dict(self.top_k())
        if len(top) != len(self._distances):
            self._distances = top
            self._dirty = True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _recompute_radius(self) -> None:
        if len(self._distances) < self._k:
            self._radius = float("inf")
        else:
            kth = heapq.nsmallest(self._k, self._distances.values())[-1]
            self._radius = kth
        self._dirty = False


def results_equal(
    first: Sequence[Neighbor],
    second: Sequence[Neighbor],
    tolerance: float = 1e-6,
) -> bool:
    """Compare two k-NN answers allowing ties at the radius boundary.

    Two answers are considered equivalent when, rank by rank, their distances
    agree within *tolerance*.  The object ids may legitimately differ when
    several objects are equidistant (ties are broken arbitrarily), so the
    comparison is on the distance profile, which is what the correctness
    argument of the paper guarantees.
    """
    if len(first) != len(second):
        return False
    for (_, dist_a), (_, dist_b) in zip(first, second):
        if abs(dist_a - dist_b) > tolerance + tolerance * max(abs(dist_a), abs(dist_b)):
            return False
    return True
