"""Update/event model: the three update streams the monitoring server receives.

At every timestamp the server receives (Section 3 of the paper):

* **object updates** — a data object moved, appeared, or disappeared;
* **query updates** — a query moved, was installed, or was terminated;
* **edge updates** — the weight of a network edge changed.

An :class:`UpdateBatch` groups the updates of one timestamp.  The paper's
Section 4.5 preprocessing (collapsing several updates of the same entity in
one timestamp into a single net update) is implemented by
:meth:`UpdateBatch.normalized`.

Monitors never mutate the shared :class:`~repro.network.graph.RoadNetwork`
or :class:`~repro.network.edge_table.EdgeTable` themselves; the owner of the
shared state (the simulator or the :class:`~repro.core.server.MonitoringServer`)
calls :func:`apply_batch` exactly once per timestamp and then hands the same
batch to every monitor, so that several algorithms can be compared in
lock-step on identical inputs.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import EventLogError, InvalidQueryError, SimulationError
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork


@dataclass(frozen=True)
class ObjectUpdate:
    """A data-object update: movement, appearance, or disappearance.

    ``old_location is None`` encodes an appearing object and
    ``new_location is None`` a disappearing one; both set is a movement.

    Example::

        ObjectUpdate(7, None, location)        # appearance
        ObjectUpdate(7, location, other)       # movement
        ObjectUpdate(7, other, None)           # disappearance
    """

    object_id: int
    old_location: Optional[NetworkLocation]
    new_location: Optional[NetworkLocation]

    def __post_init__(self) -> None:
        if self.old_location is None and self.new_location is None:
            raise SimulationError(
                f"object update {self.object_id} has neither old nor new location"
            )

    @property
    def is_insertion(self) -> bool:
        """True when the object newly appeared this timestamp."""
        return self.old_location is None

    @property
    def is_deletion(self) -> bool:
        """True when the object disappeared this timestamp."""
        return self.new_location is None


@dataclass(frozen=True)
class QueryUpdate:
    """A query update: movement, installation, or termination.

    ``old_location is None`` encodes a newly installed query (``k`` must be
    provided), ``new_location is None`` a terminated one.  ``k`` is either
    a plain integer (classic k-NN) or a
    :class:`~repro.core.queries.QuerySpec` selecting any query type; the
    normalized view is exposed as :attr:`spec`.

    Example::

        QueryUpdate(100, None, location, k=4)  # k-NN installation
        QueryUpdate(100, None, location, k=QuerySpec.range(25.0))
        QueryUpdate(100, location, other)      # movement
        QueryUpdate(100, other, None)          # termination
    """

    query_id: int
    old_location: Optional[NetworkLocation]
    new_location: Optional[NetworkLocation]
    k: Optional[object] = None

    def __post_init__(self) -> None:
        if self.old_location is None and self.new_location is None:
            raise SimulationError(
                f"query update {self.query_id} has neither old nor new location"
            )
        # Normalize (and validate) the spec exactly once; every consumer on
        # the ingestion path reads the cached value through .spec.  The
        # import is call-time to keep this module a leaf of repro.core.
        from repro.core.queries import as_query_spec

        object.__setattr__(self, "_spec", as_query_spec(self.k))
        if self.old_location is None and self._spec is None:
            raise InvalidQueryError(
                f"newly installed query {self.query_id} needs a k or QuerySpec"
            )

    @property
    def spec(self):
        """The update's :class:`~repro.core.queries.QuerySpec`, or None.

        A plain-int ``k`` was normalized into a k-NN spec at construction;
        a movement that carries no spec returns None.
        """
        return self._spec

    @property
    def is_installation(self) -> bool:
        """True when the query was newly installed this timestamp."""
        return self.old_location is None

    @property
    def is_termination(self) -> bool:
        """True when the query was terminated this timestamp."""
        return self.new_location is None


@dataclass(frozen=True)
class EdgeWeightUpdate:
    """An edge-weight change (e.g. reported by a traffic sensor).

    Weights must be positive and *finite*: a road closure is expressed as
    the huge finite sentinel
    :data:`~repro.network.graph.CLOSED_EDGE_WEIGHT`, never ``float("inf")``
    (an infinity would poison distance arithmetic downstream and is
    rejected by the network layer anyway — see ``docs/queries.md``).

    Example::

        update = EdgeWeightUpdate(12, old_weight=5.0, new_weight=6.5)
        assert update.is_increase and update.delta == 1.5
    """

    edge_id: int
    old_weight: float
    new_weight: float

    def __post_init__(self) -> None:
        # `not (x > 0)` also catches NaN, which fails every comparison.
        if not self.new_weight > 0 or self.new_weight == float("inf"):
            raise SimulationError(
                f"edge {self.edge_id}: new weight must be a positive finite "
                f"number, got {self.new_weight}"
            )

    @property
    def is_increase(self) -> bool:
        """True when the edge became more expensive."""
        return self.new_weight > self.old_weight

    @property
    def is_decrease(self) -> bool:
        """True when the edge became cheaper."""
        return self.new_weight < self.old_weight

    @property
    def delta(self) -> float:
        """Signed change ``new_weight - old_weight``."""
        return self.new_weight - self.old_weight


@dataclass
class UpdateBatch:
    """All updates received in one timestamp.

    Example::

        batch = UpdateBatch(timestamp=3)
        batch.add_object_move(7, old_location, new_location)
        batch.add_edge_change(12, old_weight=5.0, new_weight=6.5)
        server.apply_updates(batch.normalized())
    """

    timestamp: int = 0
    object_updates: List[ObjectUpdate] = field(default_factory=list)
    query_updates: List[QueryUpdate] = field(default_factory=list)
    edge_updates: List[EdgeWeightUpdate] = field(default_factory=list)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.object_updates) + len(self.query_updates) + len(self.edge_updates)

    def is_empty(self) -> bool:
        """True when the batch carries no updates at all."""
        return len(self) == 0

    def add_object_move(
        self, object_id: int, old: NetworkLocation, new: NetworkLocation
    ) -> None:
        """Append an object movement to the batch."""
        self.object_updates.append(ObjectUpdate(object_id, old, new))

    def add_query_move(
        self, query_id: int, old: NetworkLocation, new: NetworkLocation
    ) -> None:
        """Append a query movement to the batch."""
        self.query_updates.append(QueryUpdate(query_id, old, new))

    def add_edge_change(self, edge_id: int, old_weight: float, new_weight: float) -> None:
        """Append an edge-weight change to the batch."""
        self.edge_updates.append(EdgeWeightUpdate(edge_id, old_weight, new_weight))

    # ------------------------------------------------------------------
    # preprocessing (Section 4.5)
    # ------------------------------------------------------------------
    def normalized(self) -> "UpdateBatch":
        """Collapse multiple updates of the same entity into net updates.

        For an object (or query) that issued several location updates in the
        same timestamp only the first old location and the last new location
        matter; for an edge only the first old weight and the last new
        weight.  The relative order of distinct entities is preserved.
        """
        merged_objects: Dict[int, ObjectUpdate] = {}
        object_order: List[int] = []
        for update in self.object_updates:
            previous = merged_objects.get(update.object_id)
            if previous is None:
                merged_objects[update.object_id] = update
                object_order.append(update.object_id)
            elif previous.old_location is None and update.new_location is None:
                # Appeared and disappeared within the same timestamp: the net
                # effect is nothing at all, so the entity vanishes from the
                # batch (a later re-appearance starts a fresh update).
                del merged_objects[update.object_id]
            else:
                merged_objects[update.object_id] = ObjectUpdate(
                    update.object_id, previous.old_location, update.new_location
                )

        merged_queries: Dict[int, QueryUpdate] = {}
        query_order: List[int] = []
        for update in self.query_updates:
            previous = merged_queries.get(update.query_id)
            if previous is None:
                merged_queries[update.query_id] = update
                query_order.append(update.query_id)
            elif previous.old_location is None and update.new_location is None:
                # Installed and terminated within the same timestamp.
                del merged_queries[update.query_id]
            else:
                merged_queries[update.query_id] = QueryUpdate(
                    update.query_id,
                    previous.old_location,
                    update.new_location,
                    update.k if update.k is not None else previous.k,
                )

        merged_edges: Dict[int, EdgeWeightUpdate] = {}
        edge_order: List[int] = []
        for update in self.edge_updates:
            previous = merged_edges.get(update.edge_id)
            if previous is None:
                merged_edges[update.edge_id] = update
                edge_order.append(update.edge_id)
            else:
                merged_edges[update.edge_id] = EdgeWeightUpdate(
                    update.edge_id, previous.old_weight, update.new_weight
                )

        # Cancelled entities were dropped from the merged maps (and an entity
        # re-appearing after a cancellation re-enters the order list), so the
        # order lists may hold gaps and duplicates — emit each survivor once.
        def _emit(order: List[int], merged: Dict[int, object]) -> List[object]:
            emitted: set = set()
            result: List[object] = []
            for entity_id in order:
                if entity_id in merged and entity_id not in emitted:
                    emitted.add(entity_id)
                    result.append(merged[entity_id])
            return result

        return UpdateBatch(
            timestamp=self.timestamp,
            object_updates=_emit(object_order, merged_objects),
            query_updates=_emit(query_order, merged_queries),
            edge_updates=[
                merged_edges[i]
                for i in edge_order
                if merged_edges[i].old_weight != merged_edges[i].new_weight
            ],
        )


#: Version tag prefixed to every encoded batch; bumped if the payload shape
#: ever changes so old logs fail loudly instead of decoding garbage.
_BATCH_CODEC_VERSION = 1


def encode_batch(batch: UpdateBatch) -> bytes:
    """Serialize a batch to the binary payload stored in the event log.

    The inverse of :func:`decode_batch`.  Encoding is deterministic for a
    given batch and survives process boundaries, which is what the durable
    service's write-ahead log (:class:`~repro.service.EventLog`) needs:
    every logged batch must replay to exactly the updates the live server
    processed.

    Example::

        payload = encode_batch(batch)
        assert decode_batch(payload).timestamp == batch.timestamp
    """
    return pickle.dumps(
        (
            _BATCH_CODEC_VERSION,
            batch.timestamp,
            batch.object_updates,
            batch.query_updates,
            batch.edge_updates,
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode_batch(payload: bytes) -> UpdateBatch:
    """Rebuild an :class:`UpdateBatch` from :func:`encode_batch` output.

    Raises:
        EventLogError: if the payload does not decode to a batch of the
            supported codec version (corrupt bytes, or a log written by an
            incompatible library version).

    Example::

        batch = decode_batch(payload)
        server.apply_updates(batch)
    """
    try:
        record = pickle.loads(payload)
        version, timestamp, object_updates, query_updates, edge_updates = record
    except Exception as exc:
        raise EventLogError(f"cannot decode event-log batch payload: {exc}") from exc
    if version != _BATCH_CODEC_VERSION:
        raise EventLogError(
            f"unsupported batch codec version {version!r} "
            f"(this library reads version {_BATCH_CODEC_VERSION})"
        )
    return UpdateBatch(
        timestamp=timestamp,
        object_updates=list(object_updates),
        query_updates=list(query_updates),
        edge_updates=list(edge_updates),
    )


def apply_batch(network: RoadNetwork, edge_table: EdgeTable, batch: UpdateBatch) -> None:
    """Apply a batch to the shared network and edge table (exactly once).

    Edge updates set the new weights; object updates insert / move / remove
    objects in the edge table.  Query updates are *not* applied here because
    query positions are algorithm state, not shared state.

    Example::

        apply_batch(network, edge_table, batch.normalized())
        for monitor in monitors:               # every monitor, same input
            monitor.process_batch(batch)
    """
    for edge_update in batch.edge_updates:
        network.set_edge_weight(edge_update.edge_id, edge_update.new_weight)
    for object_update in batch.object_updates:
        if object_update.is_insertion:
            assert object_update.new_location is not None
            edge_table.insert_object(object_update.object_id, object_update.new_location)
        elif object_update.is_deletion:
            edge_table.remove_object(object_update.object_id)
        else:
            assert object_update.new_location is not None
            edge_table.move_object(object_update.object_id, object_update.new_location)
