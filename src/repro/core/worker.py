"""Shard worker: the per-process execution engine of the sharded server.

A worker owns one monitor over a private replica of the road network and
edge table, plus the subset of continuous queries its shard was assigned.
The parent (:class:`~repro.core.sharding.ShardedMonitoringServer`) ships one
:class:`ShardInit` at spawn time and then one message per timestamp over a
``multiprocessing`` pipe:

* ``("tick", timestamp, shared_blob, query_updates)`` — the timestamp's
  object and edge updates arrive as one pre-pickled blob (serialized once by
  the parent, not once per shard) together with the query updates owned by
  this shard.  The worker rebuilds the normalized
  :class:`~repro.core.events.UpdateBatch`, applies it to its replica, runs
  the monitor, and replies ``("report", payload)`` with the tick report
  fields and the full results of every changed query.
* ``("snapshot",)`` — reply ``("snapshot", pickled_monitor)`` and keep
  serving: the parent packs the blobs into a durable fleet snapshot
  (:meth:`~repro.core.sharding.ShardedMonitoringServer.snapshot_state`)
  that a restored server respawns workers from.
* ``("stop",)`` — shut down.

The flat-array CSR snapshot is *not* replicated: the parent exports it once
per topology version through :class:`~repro.network.csr.SharedCSR` and the
worker attaches zero-copy numpy views (or private copies kept fresh by the
broadcast edge deltas — see :func:`~repro.network.csr.attach_shared_csr`).
"""

from __future__ import annotations

import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.events import UpdateBatch, apply_batch
from repro.core.results import KnnResult
from repro.network.csr import SharedCSRHandle, attach_shared_csr, install_snapshot
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork

#: Multiplicative (Knuth) hash spreading query ids across shards; plain
#: modulo would collapse ids sharing a stride that divides the shard count.
#: The *high* half of the 32-bit product is used — the low bits preserve
#: stride divisibility and would suffer the same collapse.
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = 0xFFFFFFFF


def shard_of(query_id: int, shards: int) -> int:
    """Deterministic shard index of *query_id* among *shards* workers.

    Example::

        shard_of(1_000_000, 4)  # same value in every process, every run
    """
    return (((query_id * _HASH_MULTIPLIER) & _HASH_MASK) >> 16) % shards


@dataclass
class ShardInit:
    """Everything a shard worker needs to build its private replica.

    The network travels as one pre-pickled blob (``RoadNetwork.__getstate__``
    dropped its in-process weight listeners) and is unpickled *inside* the
    worker: the parent serializes once for the whole fleet, holds no
    replica objects itself, and the ``spawn`` start method ships the bytes
    without a decode/re-encode round trip.  ``kernel`` selects the worker
    monitor's search engine (``"csr"``, ``"dial"`` — the batched
    bucket-queue kernel — or ``"legacy"``); each worker derives its own
    per-epoch dial support from the attached snapshot, so the choice needs
    no extra shared state.
    """

    shard_id: int
    algorithm: str
    kernel: str
    #: the pickled network replica; ``None`` when ``monitor_blob`` is set
    #: (a restored monitor embeds its own replica).
    network_blob: Optional[bytes]
    objects: Dict[int, NetworkLocation]
    #: query id -> (location, k-or-QuerySpec); the sharded server ships the
    #: full :class:`~repro.core.queries.QuerySpec` so every query type
    #: (k-NN, range, aggregate k-NN) partitions transparently.
    queries: Dict[int, Tuple[NetworkLocation, object]] = field(default_factory=dict)
    csr_handle: Optional[SharedCSRHandle] = None
    zero_copy: bool = False
    #: a pickled monitor from a previous worker's ``("snapshot",)`` reply;
    #: when set, the worker resumes from it — network replica, edge table,
    #: registered queries and the exact per-query float history included —
    #: instead of building fresh state from the fields above.
    monitor_blob: Optional[bytes] = None


def _plain_result(result: KnnResult) -> KnnResult:
    """Normalize a result to builtin ints/floats for the IPC boundary.

    Zero-copy workers compute distances as numpy scalars; converting here
    keeps the merged results byte-identical to the single-process server's.
    """
    return KnnResult(
        query_id=int(result.query_id),
        k=int(result.k),
        neighbors=tuple(
            (int(object_id), float(distance))
            for object_id, distance in result.neighbors
        ),
        radius=float(result.radius),
    )


def _build_state(init: ShardInit):
    """Construct (or restore) the worker-local network state and monitor."""
    # Imported here (not at module top) to keep the worker import graph free
    # of a server <-> worker cycle.
    from repro.core.server import ALGORITHMS

    if init.monitor_blob is not None:
        # Restore path: the pickled monitor carries its own network replica
        # and edge table; re-attach the (freshly exported) shared snapshot
        # and re-announce the current results of every resumed query.
        monitor = pickle.loads(init.monitor_blob)
        network: RoadNetwork = monitor._network
        edge_table: EdgeTable = monitor._edge_table
        if init.csr_handle is not None:
            snapshot = attach_shared_csr(
                network, init.csr_handle, zero_copy=init.zero_copy
            )
            install_snapshot(network, snapshot)
        results = {
            query_id: _plain_result(monitor.result_of(query_id))
            for query_id in monitor.query_ids()
        }
        return network, edge_table, monitor, results

    network = pickle.loads(init.network_blob)
    edge_table = EdgeTable(network, build_spatial_index=False)
    for object_id, location in init.objects.items():
        edge_table.insert_object(object_id, location)
    if init.csr_handle is not None:
        snapshot = attach_shared_csr(network, init.csr_handle, zero_copy=init.zero_copy)
        install_snapshot(network, snapshot)
    monitor = ALGORITHMS[init.algorithm](network, edge_table, kernel=init.kernel)
    results: Dict[int, KnnResult] = {}
    for query_id, (location, k) in init.queries.items():
        results[query_id] = _plain_result(monitor.register_query(query_id, location, k))
    return network, edge_table, monitor, results


def run_shard_worker(conn, init: ShardInit) -> None:
    """Worker process entry point: build the replica, then serve ticks.

    Sends ``("ready", initial_results)`` once construction succeeds, then
    answers every tick message with ``("report", payload)`` where *payload*
    is ``(timestamp, elapsed_seconds, cpu_seconds, changed_query_ids,
    counters, changed_results)``; ``cpu_seconds`` is this process's CPU
    time for the tick, the contention-free signal throughput studies use.
    Any exception is reported as ``("error", traceback_text)`` and ends the
    worker.
    """
    try:
        network, edge_table, monitor, initial_results = _build_state(init)
        conn.send(("ready", initial_results))
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent went away; nothing left to report to
            kind = message[0]
            if kind == "stop":
                break
            if kind == "snapshot":
                # Pickle the monitor between ticks: its per-batch kernel
                # fields (_batch_csr/_batch_support) are None outside
                # _process, and the CSR snapshot cache is module-level and
                # weak, so the blob carries exactly the replica + algorithm
                # state a restored worker resumes from.
                try:
                    conn.send(
                        ("snapshot", pickle.dumps(monitor, protocol=pickle.HIGHEST_PROTOCOL))
                    )
                except Exception:
                    conn.send(("error", traceback.format_exc()))
                    break
                continue
            if kind != "tick":
                conn.send(("error", f"shard {init.shard_id}: unknown message {kind!r}"))
                break
            _, timestamp, shared_blob, query_updates = message
            try:
                object_updates, edge_updates = pickle.loads(shared_blob)
                batch = UpdateBatch(
                    timestamp=timestamp,
                    object_updates=object_updates,
                    query_updates=query_updates,
                    edge_updates=edge_updates,
                )
                cpu_start = time.process_time()
                apply_batch(network, edge_table, batch)
                report = monitor.process_batch(batch)
                changed = set(report.changed_queries)
                results = {
                    query_id: _plain_result(monitor.result_of(query_id))
                    for query_id in changed
                }
                cpu_seconds = time.process_time() - cpu_start
                conn.send(
                    (
                        "report",
                        (
                            report.timestamp,
                            report.elapsed_seconds,
                            cpu_seconds,
                            changed,
                            dict(report.counters),
                            results,
                        ),
                    )
                )
            except Exception:
                conn.send(("error", traceback.format_exc()))
                break
    finally:
        conn.close()
