"""Shard worker: the per-process execution engine of the sharded server.

A worker owns one monitor over a private replica of the road network and
edge table, plus the subset of continuous queries its shard was assigned.
The parent (:class:`~repro.core.sharding.ShardedMonitoringServer`) ships one
:class:`ShardInit` at spawn time and then one message per timestamp over a
``multiprocessing`` pipe:

* ``("tick", timestamp, shared_blob, query_updates)`` — the timestamp's
  object and edge updates arrive as one pre-pickled blob (serialized once by
  the parent, not once per shard) together with the query updates owned by
  this shard.  The worker rebuilds the normalized
  :class:`~repro.core.events.UpdateBatch`, applies it to its replica, runs
  the monitor, and replies ``("report", payload)`` with the tick report
  fields and the full results of every changed query.
* ``("snapshot",)`` — reply ``("snapshot", pickled_monitor)`` and keep
  serving: the parent packs the blobs into a durable fleet snapshot
  (:meth:`~repro.core.sharding.ShardedMonitoringServer.snapshot_state`)
  that a restored server respawns workers from.
* ``("expand", requests)`` — graph-partitioned mode only: run one exact
  network expansion per request (fresh or a *frontier continuation* seeded
  at halo nodes) and reply ``("expanded", replies)`` where each reply is
  ``(neighbors, halo_hits)`` — the settled halo nodes are what the
  coordinator forwards to neighboring shards as resume requests.
* ``("rss",)`` — reply ``("rss", peak_rss_bytes)`` of this worker process
  (the memory-model evidence for graph partitioning: a block+halo worker
  should peak well below a full-replica worker).
* ``("stop",)`` — shut down.

In graph-partitioned mode (``ShardInit.halo_nodes`` is not ``None``) the
worker's replica is only its partition block plus a one-hop halo.  A local
answer is exact iff its expansion never settled a halo node (any shortest
path leaving the block crosses the halo at its first exit); after every
tick the worker *probes* each potentially affected query with a
fixed-radius re-expansion and **escalates** the ones whose probe touched
the halo — it unregisters them and reports their ids so the coordinator
takes over via the cross-shard expansion protocol.

The flat-array CSR snapshot is *not* replicated: the parent exports it once
per topology version through :class:`~repro.network.csr.SharedCSR` and the
worker attaches zero-copy numpy views (or private copies kept fresh by the
broadcast edge deltas — see :func:`~repro.network.csr.attach_shared_csr`).
"""

from __future__ import annotations

import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.events import UpdateBatch, apply_batch
from repro.core.results import KnnResult
from repro.core.search import expand_knn
from repro.network.csr import SharedCSRHandle, attach_shared_csr, install_snapshot
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork

#: Multiplicative (Knuth) hash spreading query ids across shards; plain
#: modulo would collapse ids sharing a stride that divides the shard count.
#: The *high* half of the 32-bit product is used — the low bits preserve
#: stride divisibility and would suffer the same collapse.
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = 0xFFFFFFFF


def shard_of(query_id: int, shards: int) -> int:
    """Deterministic shard index of *query_id* among *shards* workers.

    Example::

        shard_of(1_000_000, 4)  # same value in every process, every run
    """
    return (((query_id * _HASH_MULTIPLIER) & _HASH_MASK) >> 16) % shards


@dataclass
class ShardInit:
    """Everything a shard worker needs to build its private replica.

    The network travels as one pre-pickled blob (``RoadNetwork.__getstate__``
    dropped its in-process weight listeners) and is unpickled *inside* the
    worker: the parent serializes once for the whole fleet, holds no
    replica objects itself, and the ``spawn`` start method ships the bytes
    without a decode/re-encode round trip.  ``kernel`` selects the worker
    monitor's search engine (``"csr"``, ``"dial"`` — the batched
    bucket-queue kernel — or ``"legacy"``); each worker derives its own
    per-epoch dial support from the attached snapshot, so the choice needs
    no extra shared state.
    """

    shard_id: int
    algorithm: str
    kernel: str
    #: the pickled network replica; ``None`` when ``monitor_blob`` is set
    #: (a restored monitor embeds its own replica).
    network_blob: Optional[bytes]
    objects: Dict[int, NetworkLocation]
    #: query id -> (location, k-or-QuerySpec); the sharded server ships the
    #: full :class:`~repro.core.queries.QuerySpec` so every query type
    #: (k-NN, range, aggregate k-NN) partitions transparently.
    queries: Dict[int, Tuple[NetworkLocation, object]] = field(default_factory=dict)
    csr_handle: Optional[SharedCSRHandle] = None
    zero_copy: bool = False
    #: a pickled monitor from a previous worker's ``("snapshot",)`` reply;
    #: when set, the worker resumes from it — network replica, edge table,
    #: registered queries and the exact per-query float history included —
    #: instead of building fresh state from the fields above.
    monitor_blob: Optional[bytes] = None
    #: graph-partitioned mode marker: the one-hop halo node ids bordering
    #: this shard's block.  ``None`` selects replica mode (full network,
    #: hash-partitioned queries); a set — possibly empty, e.g. a
    #: single-shard partition — selects graph mode, where ``network_blob``
    #: carries only the block+halo subnetwork and the worker escalates any
    #: query whose expansion reaches a halo node.
    halo_nodes: Optional[FrozenSet[int]] = None


def _plain_result(result: KnnResult) -> KnnResult:
    """Normalize a result to builtin ints/floats for the IPC boundary.

    Zero-copy workers compute distances as numpy scalars; converting here
    keeps the merged results byte-identical to the single-process server's.
    """
    return KnnResult(
        query_id=int(result.query_id),
        k=int(result.k),
        neighbors=tuple(
            (int(object_id), float(distance))
            for object_id, distance in result.neighbors
        ),
        radius=float(result.radius),
    )


def _probe_escalations(
    monitor,
    network: RoadNetwork,
    edge_table: EdgeTable,
    halo_nodes: FrozenSet[int],
    query_ids: Iterable[int],
) -> List[int]:
    """Return the sorted registered query ids whose local answer may be wrong.

    A query's locally computed result is exact iff no shortest path to a
    reported neighbor (nor any path that could have produced a closer one)
    leaves the partition block: any full-graph path that exits the block
    crosses a halo node at its first exit, and the path prefix up to that
    crossing runs entirely over local edges.  So re-expanding with
    ``fixed_radius=result.radius`` — which settles nodes at distance
    *exactly* the radius too, unlike the exclusive k-NN stop rule — and
    checking the settled set against the halo is a conservative, exact
    containment test: no settled halo node means no shorter path can exist
    outside the block.

    Escalated unconditionally: aggregate queries (their aggregation points
    may live on other shards' edges) and queries whose local radius is
    ``inf`` (fewer than *k* objects visible locally — the real neighbors may
    be anywhere).
    """
    escalated: List[int] = []
    registered = monitor.query_ids()
    for query_id in sorted(query_ids):
        if query_id not in registered:
            continue
        spec = monitor.query_spec(query_id)
        if spec.kind == "aggregate_knn":
            escalated.append(query_id)
            continue
        radius = float(monitor.result_of(query_id).radius)
        if radius == float("inf"):
            escalated.append(query_id)
            continue
        probe = expand_knn(
            network,
            edge_table,
            1,
            query_location=monitor.query_location(query_id),
            fixed_radius=radius,
        )
        if any(node_id in halo_nodes for node_id in probe.state.node_dist):
            escalated.append(query_id)
    return escalated


def _serve_expansions(network, edge_table, halo_nodes, requests):
    """Answer one ``("expand", requests)`` message of the cross-shard protocol.

    Each request is ``(k, query_location, seed_nodes, candidates,
    fixed_radius)``; exactly one of *query_location* (the owning shard's
    fresh round) and *seed_nodes* (a frontier continuation forwarded by the
    coordinator) is set.  The reply per request is ``(neighbors, halo_hits)``
    where *halo_hits* lists every settled halo node as ``(node_id,
    distance)`` — the continuations the coordinator may forward onward.
    """
    replies = []
    for k, query_location, seed_nodes, candidates, fixed_radius in requests:
        outcome = expand_knn(
            network,
            edge_table,
            k,
            query_location=query_location,
            seed_nodes=seed_nodes,
            candidates=candidates,
            fixed_radius=fixed_radius,
        )
        neighbors = [
            (int(object_id), float(distance))
            for object_id, distance in outcome.neighbors
        ]
        halo_hits = [
            (int(node_id), float(distance))
            for node_id, distance in outcome.state.node_dist.items()
            if node_id in halo_nodes and distance is not None
        ]
        replies.append((neighbors, halo_hits))
    return replies


def _peak_rss_bytes() -> int:
    """This process's peak resident set size in bytes (0 when unavailable).

    Prefers ``VmHWM`` from ``/proc/self/status`` over
    ``getrusage().ru_maxrss``: on Linux ``ru_maxrss`` is per-task
    accounting that survives ``exec``, so even a ``spawn``-ed worker
    reports the *parent's* footprint at fork time, not its own state.
    ``VmHWM`` is the high-water mark of the current address space, which
    a spawned worker owns outright — the honest per-worker figure.
    (A forked worker's ``VmHWM`` still starts at the parent's resident
    size — copy-on-write pages are resident from birth — so memory
    comparisons between partitioning modes must use ``spawn``.)
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024  # reported in kB
    except Exception:
        pass
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        return int(peak) if sys.platform == "darwin" else int(peak) * 1024
    except Exception:
        return 0


def _build_state(init: ShardInit):
    """Construct (or restore) the worker-local network state and monitor."""
    # Imported here (not at module top) to keep the worker import graph free
    # of a server <-> worker cycle.
    from repro.core.server import ALGORITHMS

    if init.monitor_blob is not None:
        # Restore path: the pickled monitor carries its own network replica
        # and edge table; re-attach the (freshly exported) shared snapshot
        # and re-announce the current results of every resumed query.
        monitor = pickle.loads(init.monitor_blob)
        network: RoadNetwork = monitor._network
        edge_table: EdgeTable = monitor._edge_table
        if init.csr_handle is not None:
            snapshot = attach_shared_csr(
                network, init.csr_handle, zero_copy=init.zero_copy
            )
            install_snapshot(network, snapshot)
        results = {
            query_id: _plain_result(monitor.result_of(query_id))
            for query_id in monitor.query_ids()
        }
        # Restored monitors carry only queries that were contained at
        # snapshot time (boundary queries live in the coordinator), so no
        # registration-time probe is needed.
        return network, edge_table, monitor, results, []

    network = pickle.loads(init.network_blob)
    edge_table = EdgeTable(network, build_spatial_index=False)
    for object_id, location in init.objects.items():
        edge_table.insert_object(object_id, location)
    if init.csr_handle is not None:
        snapshot = attach_shared_csr(network, init.csr_handle, zero_copy=init.zero_copy)
        install_snapshot(network, snapshot)
    monitor = ALGORITHMS[init.algorithm](network, edge_table, kernel=init.kernel)
    results: Dict[int, KnnResult] = {}
    for query_id, (location, k) in init.queries.items():
        results[query_id] = _plain_result(monitor.register_query(query_id, location, k))
    escalated: List[int] = []
    if init.halo_nodes is not None:
        escalated = _probe_escalations(
            monitor, network, edge_table, init.halo_nodes, list(results)
        )
        for query_id in escalated:
            monitor.unregister_query(query_id)
            results.pop(query_id, None)
    return network, edge_table, monitor, results, escalated


def run_shard_worker(conn, init: ShardInit) -> None:
    """Worker process entry point: build the replica, then serve ticks.

    Sends ``("ready", (initial_results, escalated_ids))`` once construction
    succeeds (*escalated_ids* is always empty in replica mode), then answers
    every tick message with ``("report", payload)`` where *payload* is
    ``(timestamp, elapsed_seconds, cpu_seconds, changed_query_ids, counters,
    changed_results, escalated_ids)``; ``cpu_seconds`` is this process's CPU
    time for the tick, the contention-free signal throughput studies use.
    Any exception is reported as ``("error", traceback_text)`` and ends the
    worker.
    """
    try:
        network, edge_table, monitor, initial_results, initial_escalated = (
            _build_state(init)
        )
        conn.send(("ready", (initial_results, initial_escalated)))
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent went away; nothing left to report to
            kind = message[0]
            if kind == "stop":
                break
            if kind == "snapshot":
                # Pickle the monitor between ticks: its per-batch kernel
                # fields (_batch_csr/_batch_support) are None outside
                # _process, and the CSR snapshot cache is module-level and
                # weak, so the blob carries exactly the replica + algorithm
                # state a restored worker resumes from.
                try:
                    conn.send(
                        ("snapshot", pickle.dumps(monitor, protocol=pickle.HIGHEST_PROTOCOL))
                    )
                except Exception:
                    conn.send(("error", traceback.format_exc()))
                    break
                continue
            if kind == "rss":
                conn.send(("rss", _peak_rss_bytes()))
                continue
            if kind == "expand":
                try:
                    replies = _serve_expansions(
                        network, edge_table, init.halo_nodes or frozenset(), message[1]
                    )
                    conn.send(("expanded", replies))
                except Exception:
                    conn.send(("error", traceback.format_exc()))
                    break
                continue
            if kind != "tick":
                conn.send(("error", f"shard {init.shard_id}: unknown message {kind!r}"))
                break
            _, timestamp, shared_blob, query_updates = message
            try:
                object_updates, edge_updates = pickle.loads(shared_blob)
                batch = UpdateBatch(
                    timestamp=timestamp,
                    object_updates=object_updates,
                    query_updates=query_updates,
                    edge_updates=edge_updates,
                )
                cpu_start = time.process_time()
                apply_batch(network, edge_table, batch)
                report = monitor.process_batch(batch)
                changed = set(report.changed_queries)
                escalated: List[int] = []
                if init.halo_nodes is not None:
                    # Edge-weight changes move halo distances silently, so
                    # every registered query must be re-probed; otherwise
                    # only queries whose answer or position changed can
                    # newly spill over the boundary.
                    if edge_updates:
                        probe_ids = set(monitor.query_ids())
                    else:
                        probe_ids = set(changed)
                        for update in query_updates:
                            if not update.is_termination:
                                probe_ids.add(update.query_id)
                    escalated = _probe_escalations(
                        monitor, network, edge_table, init.halo_nodes, probe_ids
                    )
                    for query_id in escalated:
                        monitor.unregister_query(query_id)
                        changed.discard(query_id)
                results = {
                    query_id: _plain_result(monitor.result_of(query_id))
                    for query_id in changed
                }
                cpu_seconds = time.process_time() - cpu_start
                conn.send(
                    (
                        "report",
                        (
                            report.timestamp,
                            report.elapsed_seconds,
                            cpu_seconds,
                            changed,
                            dict(report.counters),
                            results,
                            escalated,
                        ),
                    )
                )
            except Exception:
                conn.send(("error", traceback.format_exc()))
                break
    finally:
        conn.close()
