"""Influence index: which queries does an edge (or a point on it) affect?

Section 3 of the paper attaches to every edge an *influence list* ``e.IL``
containing the queries it affects together with the corresponding
*influencing intervals* — the portions of the edge whose network distance
from the query is at most the query's ``kNN_dist``.  The monitoring
algorithms use these lists to process only the updates that may invalidate a
result and ignore everything else.

This module centralises that bookkeeping in :class:`InfluenceIndex`, a
bidirectional mapping::

    edge_id  ->  {subscriber_id: spans}
    subscriber_id -> {edge_id}

where a *subscriber* is a query (IMA, GMA user queries) or an active node
(GMA's inner monitor).  Intervals are expressed in travel-cost offsets from
the edge's start node under the edge weight current at registration time;
because a query's intervals are recomputed whenever its expansion state
changes, the stored intervals are always consistent with the weights the
subscriber last saw.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Set, Tuple

from repro.utils.intervals import Spans, point_in_spans


#: Shared empty mapping returned by the zero-copy subscriber view.
_NO_SUBSCRIBERS: Dict[int, "Spans"] = {}


class InfluenceIndex:
    """Bidirectional edge <-> subscriber influence mapping."""

    def __init__(self) -> None:
        self._by_edge: Dict[int, Dict[int, Spans]] = {}
        self._by_subscriber: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def set_influence(
        self, subscriber_id: int, edge_id: int, intervals: Spans
    ) -> None:
        """Register (or replace) the influence of *edge_id* on *subscriber_id*.

        Registering an empty interval set removes the entry.
        """
        if not intervals:
            self.remove_influence(subscriber_id, edge_id)
            return
        self._by_edge.setdefault(edge_id, {})[subscriber_id] = intervals
        self._by_subscriber.setdefault(subscriber_id, set()).add(edge_id)

    def replace_subscriber(
        self, subscriber_id: int, influences: Mapping[int, Spans]
    ) -> None:
        """Atomically replace every influence entry of one subscriber."""
        self.clear_subscriber(subscriber_id)
        for edge_id, intervals in influences.items():
            self.set_influence(subscriber_id, edge_id, intervals)

    def replace_subscribers(
        self, influences_by_subscriber: Mapping[int, Mapping[int, Spans]]
    ) -> None:
        """Bulk :meth:`replace_subscriber` for a whole flushed tick.

        Semantically identical to calling :meth:`replace_subscriber` once
        per entry, but diff-aware: consecutive influence regions of a query
        overlap heavily, so entries on edges present in both the old and the
        new map are overwritten in place instead of removed and re-inserted;
        only the old-minus-new edges pay a removal.  The dial kernel's
        collect-then-flush tick refreshes hundreds of subscribers here in
        one call.
        """
        by_edge = self._by_edge
        by_subscriber = self._by_subscriber
        for subscriber_id, influences in influences_by_subscriber.items():
            old_edges = by_subscriber.get(subscriber_id)
            edges: Set[int] = set()
            for edge_id, intervals in influences.items():
                if not intervals:
                    continue
                per_edge = by_edge.get(edge_id)
                if per_edge is None:
                    by_edge[edge_id] = {subscriber_id: intervals}
                else:
                    per_edge[subscriber_id] = intervals
                edges.add(edge_id)
            if old_edges:
                for edge_id in old_edges:
                    if edge_id in edges:
                        continue
                    per_edge = by_edge.get(edge_id)
                    if per_edge is not None:
                        per_edge.pop(subscriber_id, None)
                        if not per_edge:
                            del by_edge[edge_id]
            if edges:
                by_subscriber[subscriber_id] = edges
            else:
                by_subscriber.pop(subscriber_id, None)

    def remove_influence(self, subscriber_id: int, edge_id: int) -> None:
        """Remove one (subscriber, edge) entry if present."""
        per_edge = self._by_edge.get(edge_id)
        if per_edge is not None and subscriber_id in per_edge:
            del per_edge[subscriber_id]
            if not per_edge:
                del self._by_edge[edge_id]
        edges = self._by_subscriber.get(subscriber_id)
        if edges is not None:
            edges.discard(edge_id)
            if not edges:
                del self._by_subscriber[subscriber_id]

    def clear_subscriber(self, subscriber_id: int) -> None:
        """Remove every influence entry of *subscriber_id*."""
        edges = self._by_subscriber.pop(subscriber_id, set())
        for edge_id in edges:
            per_edge = self._by_edge.get(edge_id)
            if per_edge is not None:
                per_edge.pop(subscriber_id, None)
                if not per_edge:
                    del self._by_edge[edge_id]

    def clear(self) -> None:
        """Drop every entry."""
        self._by_edge.clear()
        self._by_subscriber.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def subscribers_on_edge(self, edge_id: int) -> Set[int]:
        """Every subscriber affected by *edge_id* (any interval)."""
        return set(self._by_edge.get(edge_id, ()))

    def subscribers_on_edge_view(self, edge_id: int):
        """Zero-copy iterable of the subscribers affected by *edge_id*.

        Unlike :meth:`subscribers_on_edge` this does not copy; the caller
        must not register or remove influence entries while iterating.  The
        monitors' update-collection loops (which only read the index) use it
        to avoid one set copy per update.
        """
        return self._by_edge.get(edge_id, _NO_SUBSCRIBERS)

    def subscribers_at_point(
        self, edge_id: int, offset: float, tolerance: float = 1e-6
    ) -> Set[int]:
        """Subscribers whose influencing interval on *edge_id* contains *offset*.

        This is the filter applied to object updates: an update matters to a
        query only when the object's (old or new) position falls inside the
        query's influencing interval on that edge.  The tolerance is generous
        (over-inclusion merely processes a harmless extra update, while
        under-inclusion could leave a stale neighbor in a result).
        """
        result: Set[int] = set()
        for subscriber_id, intervals in self._by_edge.get(edge_id, {}).items():
            if point_in_spans(intervals, offset, tolerance):
                result.add(subscriber_id)
        return result

    def interval_of(self, subscriber_id: int, edge_id: int) -> Optional[Spans]:
        """The influencing interval set of a (subscriber, edge) pair, if any."""
        return self._by_edge.get(edge_id, {}).get(subscriber_id)

    def edges_of_subscriber(self, subscriber_id: int) -> Set[int]:
        """Every edge that currently affects *subscriber_id*."""
        return set(self._by_subscriber.get(subscriber_id, ()))

    def contains_point(
        self, subscriber_id: int, edge_id: int, offset: float, tolerance: float = 1e-6
    ) -> bool:
        """True when *offset* on *edge_id* influences *subscriber_id*."""
        intervals = self.interval_of(subscriber_id, edge_id)
        return intervals is not None and point_in_spans(intervals, offset, tolerance)

    def has_subscriber(self, subscriber_id: int) -> bool:
        return subscriber_id in self._by_subscriber

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total number of (edge, subscriber) influence entries."""
        return sum(len(per_edge) for per_edge in self._by_edge.values())

    def edge_count(self) -> int:
        """Number of edges with at least one influence entry."""
        return len(self._by_edge)

    def subscriber_count(self) -> int:
        """Number of subscribers with at least one influence entry."""
        return len(self._by_subscriber)

    def interval_count(self) -> int:
        """Total number of stored intervals (for memory accounting)."""
        return sum(
            len(intervals)
            for per_edge in self._by_edge.values()
            for intervals in per_edge.values()
        )

    def iter_entries(self) -> Iterator[Tuple[int, int, Spans]]:
        """Iterate over ``(edge_id, subscriber_id, intervals)`` entries."""
        for edge_id, per_edge in self._by_edge.items():
            for subscriber_id, intervals in per_edge.items():
                yield edge_id, subscriber_id, intervals
