"""Experiment harness: Table-2 parameter space, per-figure sweeps, reporting."""

from repro.experiments.config import (
    DEFAULT_SCALE,
    SCALED_DEFAULTS,
    SMOKE_DEFAULTS,
    SweepPoint,
    scale_cardinality,
    table2_rows,
)
from repro.experiments.figures import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    list_experiments,
)
from repro.experiments.reporting import (
    format_experiment,
    format_summary,
    format_table,
    format_table2,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRow,
    run_all,
    run_experiment,
    run_point,
)

__all__ = [
    "SCALED_DEFAULTS",
    "SMOKE_DEFAULTS",
    "DEFAULT_SCALE",
    "SweepPoint",
    "scale_cardinality",
    "table2_rows",
    "Experiment",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "ExperimentResult",
    "ExperimentRow",
    "run_experiment",
    "run_all",
    "run_point",
    "format_experiment",
    "format_table",
    "format_table2",
    "format_summary",
]
