"""Experiment runner: execute a figure's sweep and collect its series.

The runner turns an :class:`~repro.experiments.figures.Experiment` into a
list of rows — one per sweep point — each holding, for every algorithm, the
mean CPU time per timestamp, the abstract work counters, and the memory
footprint.  Both metrics matter: wall-clock seconds are what the paper
plots, while the work counters (nodes expanded, edges scanned, objects
considered) are the machine-independent measure of the same quantity and are
robust against Python's interpreter constant factors at the scaled-down
benchmark sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.figures import Experiment, get_experiment
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import Simulator
from repro.sim.workload import WorkloadConfig


@dataclass
class ExperimentRow:
    """Measurements of one sweep point."""

    label: str
    paper_value: object
    config: WorkloadConfig
    #: algorithm name -> mean seconds per timestamp
    cpu_seconds: Dict[str, float] = field(default_factory=dict)
    #: algorithm name -> mean memory footprint in KB
    memory_kb: Dict[str, float] = field(default_factory=dict)
    #: algorithm name -> mean work counters per timestamp
    counters: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def metric(self, algorithm: str, metric: str) -> float:
        """The requested metric value (``cpu`` seconds or ``memory`` KB)."""
        if metric == "memory":
            return self.memory_kb.get(algorithm, 0.0)
        return self.cpu_seconds.get(algorithm, 0.0)


@dataclass
class ExperimentResult:
    """All rows of one experiment plus bookkeeping."""

    experiment: Experiment
    rows: List[ExperimentRow]
    elapsed_seconds: float
    validated: bool = False
    validation_mismatches: int = 0

    def series(self, algorithm: str) -> List[float]:
        """The y-series of one algorithm across the sweep."""
        return [row.metric(algorithm, self.experiment.metric) for row in self.rows]

    def winner_per_point(self) -> List[str]:
        """The fastest (or smallest-memory) algorithm at every sweep point."""
        winners = []
        for row in self.rows:
            values = {
                algorithm: row.metric(algorithm, self.experiment.metric)
                for algorithm in self.experiment.algorithms
            }
            winners.append(min(values, key=values.get))
        return winners


def run_point(
    config: WorkloadConfig,
    algorithms: Sequence[str],
    validate: bool = False,
) -> SimulationResult:
    """Run one sweep point (a full simulation) and return its metrics."""
    simulator = Simulator(config)
    return simulator.run(algorithms=algorithms, validate=validate)


def run_experiment(
    experiment_or_id,
    algorithms: Optional[Sequence[str]] = None,
    validate: bool = False,
    timestamps: Optional[int] = None,
) -> ExperimentResult:
    """Run every sweep point of an experiment.

    Args:
        experiment_or_id: an :class:`Experiment` or its id string.
        algorithms: override the experiment's algorithm list.
        validate: also cross-check all algorithms' results per timestamp.
        timestamps: override the number of monitored timestamps (useful to
            shorten benchmark runs further).
    """
    experiment = (
        experiment_or_id
        if isinstance(experiment_or_id, Experiment)
        else get_experiment(experiment_or_id)
    )
    algorithm_list = tuple(algorithms) if algorithms else experiment.algorithms

    start = time.perf_counter()
    rows: List[ExperimentRow] = []
    mismatches = 0
    for point in experiment.points:
        config = point.config
        if timestamps is not None:
            config = config.with_overrides(timestamps=timestamps)
        result = run_point(config, algorithm_list, validate=validate)
        mismatches += result.validation_mismatches
        row = ExperimentRow(
            label=point.label, paper_value=point.paper_value, config=config
        )
        for name, metrics in result.metrics.items():
            row.cpu_seconds[name] = metrics.mean_seconds()
            row.memory_kb[name] = metrics.mean_memory_kb()
            row.counters[name] = {
                "nodes_expanded": metrics.mean_counter("nodes_expanded"),
                "edges_scanned": metrics.mean_counter("edges_scanned"),
                "objects_considered": metrics.mean_counter("objects_considered"),
                "searches": metrics.mean_counter("searches"),
            }
        rows.append(row)
    elapsed = time.perf_counter() - start
    return ExperimentResult(
        experiment=experiment,
        rows=rows,
        elapsed_seconds=elapsed,
        validated=validate,
        validation_mismatches=mismatches,
    )


def run_all(
    experiment_ids: Optional[Sequence[str]] = None,
    validate: bool = False,
    timestamps: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """Run several (default: all) experiments and return their results."""
    from repro.experiments.figures import list_experiments

    if experiment_ids is None:
        experiments = list_experiments()
    else:
        experiments = [get_experiment(experiment_id) for experiment_id in experiment_ids]
    return {
        experiment.experiment_id: run_experiment(
            experiment, validate=validate, timestamps=timestamps
        )
        for experiment in experiments
    }
