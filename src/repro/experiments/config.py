"""Experiment configuration: Table 2 of the paper plus benchmark scaling.

The paper's Table 2 lists the parameter space of the evaluation; the
defaults are a 10K-edge San-Francisco sub-network with 100K objects and 5K
queries monitored for 100 timestamps.  Running that in pure Python takes
hours per figure, so the benchmark harness uses a *scaled* default preserving
the ratios that drive the algorithms' relative behaviour:

* object density      N / edges   = 10 objects per edge (paper: 10),
* query density       Q / edges   = 0.25 queries per edge (paper: 0.5),
* k / objects-per-edge ratio, the three agilities and the two speeds are
  kept at the paper's values.

Every figure's sweep maps the paper's parameter range onto the scaled
network proportionally; the mapping is recorded alongside the results so
EXPERIMENTS.md can state both the paper's axis values and the scaled ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.workload import PAPER_DEFAULTS, WorkloadConfig

#: Scale factor applied to the paper's cardinalities for the benchmarks
#: (paper edge count / scaled edge count).
DEFAULT_SCALE = 25

#: The scaled default workload used by every benchmark unless the figure
#: varies that parameter.  400 edges x 10 objects/edge x 100 queries.
SCALED_DEFAULTS = WorkloadConfig(
    num_objects=4_000,
    num_queries=100,
    object_distribution="uniform",
    query_distribution="gaussian",
    k=10,
    edge_agility=0.04,
    object_speed=1.0,
    object_agility=0.10,
    query_speed=1.0,
    query_agility=0.10,
    network_edges=400,
    timestamps=3,
    seed=20060912,
)

#: A smaller preset for quick smoke runs and unit tests of the harness.
SMOKE_DEFAULTS = SCALED_DEFAULTS.with_overrides(
    num_objects=600, num_queries=30, k=5, network_edges=150, timestamps=2
)


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of a figure: a label and its workload configuration."""

    label: str
    paper_value: object
    config: WorkloadConfig


def table2_rows() -> List[Dict[str, object]]:
    """The rows of Table 2: parameter, paper default, paper range, scaled default."""
    scaled = SCALED_DEFAULTS
    return [
        {
            "parameter": "Number of objects (N)",
            "paper_default": PAPER_DEFAULTS["num_objects"],
            "paper_range": "10K, 50K, 100K, 150K, 200K",
            "scaled_default": scaled.num_objects,
        },
        {
            "parameter": "Number of queries (Q)",
            "paper_default": PAPER_DEFAULTS["num_queries"],
            "paper_range": "1K, 3K, 5K, 7K, 10K",
            "scaled_default": scaled.num_queries,
        },
        {
            "parameter": "Object distribution",
            "paper_default": "Uniform",
            "paper_range": "Gaussian, Uniform",
            "scaled_default": scaled.object_distribution,
        },
        {
            "parameter": "Query distribution",
            "paper_default": "Gaussian",
            "paper_range": "Gaussian, Uniform",
            "scaled_default": scaled.query_distribution,
        },
        {
            "parameter": "Number of NNs (k)",
            "paper_default": PAPER_DEFAULTS["k"],
            "paper_range": "1, 25, 50, 100, 200",
            "scaled_default": scaled.k,
        },
        {
            "parameter": "Edge agility (f_edg)",
            "paper_default": "4%",
            "paper_range": "1, 2, 4, 8, 16 (%)",
            "scaled_default": f"{scaled.edge_agility:.0%}",
        },
        {
            "parameter": "Object speed (v_obj)",
            "paper_default": "1 edge/ts",
            "paper_range": "0.25, 0.5, 1, 2, 4",
            "scaled_default": scaled.object_speed,
        },
        {
            "parameter": "Object agility (f_obj)",
            "paper_default": "10%",
            "paper_range": "0, 5, 10, 15, 20 (%)",
            "scaled_default": f"{scaled.object_agility:.0%}",
        },
        {
            "parameter": "Query speed (v_qry)",
            "paper_default": "1 edge/ts",
            "paper_range": "0.25, 0.5, 1, 2, 4",
            "scaled_default": scaled.query_speed,
        },
        {
            "parameter": "Query agility (f_qry)",
            "paper_default": "10%",
            "paper_range": "0, 5, 10, 15, 20 (%)",
            "scaled_default": f"{scaled.query_agility:.0%}",
        },
        {
            "parameter": "Network size (edges)",
            "paper_default": PAPER_DEFAULTS["network_edges"],
            "paper_range": "1K, 5K, 10K, 50K, 100K",
            "scaled_default": scaled.network_edges,
        },
        {
            "parameter": "Timestamps monitored",
            "paper_default": PAPER_DEFAULTS["timestamps"],
            "paper_range": "100",
            "scaled_default": scaled.timestamps,
        },
    ]


def scale_cardinality(paper_value: int, scale: int = DEFAULT_SCALE) -> int:
    """Map a paper cardinality (objects/queries/edges) to the scaled setup."""
    return max(1, int(round(paper_value / scale)))
