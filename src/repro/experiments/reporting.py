"""Plain-text reporting of experiment results (the benchmark harness output).

The paper presents its evaluation as line charts; in a terminal-first
reproduction the equivalent artefact is a table per figure whose rows are the
x-axis points and whose columns are the algorithms.  These formatters are
used by the CLI, by the pytest benchmarks (printed with ``-s``), and by the
script that regenerates EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.config import table2_rows
from repro.experiments.runner import ExperimentResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_experiment(result: ExperimentResult, include_counters: bool = True) -> str:
    """Render one experiment's series as a text report."""
    experiment = result.experiment
    unit = "KB" if experiment.metric == "memory" else "s/timestamp"
    headers = [experiment.paper_artifact] + [
        f"{algorithm} ({unit})" for algorithm in experiment.algorithms
    ]
    rows: List[List[object]] = []
    for row in result.rows:
        formatted = [row.label]
        for algorithm in experiment.algorithms:
            value = row.metric(algorithm, experiment.metric)
            formatted.append(f"{value:.4f}" if experiment.metric == "cpu" else f"{value:.1f}")
        rows.append(formatted)

    parts = [
        f"== {experiment.paper_artifact}: {experiment.description} ==",
        format_table(headers, rows),
        f"expected shape: {experiment.expected_shape}",
        f"winner per point: {', '.join(result.winner_per_point())}",
    ]

    if include_counters and experiment.metric == "cpu":
        counter_headers = [experiment.paper_artifact] + [
            f"{algorithm} (objects/ts)" for algorithm in experiment.algorithms
        ]
        counter_rows: List[List[object]] = []
        for row in result.rows:
            formatted = [row.label]
            for algorithm in experiment.algorithms:
                counters = row.counters.get(algorithm, {})
                formatted.append(f"{counters.get('objects_considered', 0.0):.0f}")
            counter_rows.append(formatted)
        parts.append("algorithmic work (objects considered per timestamp):")
        parts.append(format_table(counter_headers, counter_rows))

    if result.validated:
        parts.append(f"cross-algorithm result mismatches: {result.validation_mismatches}")
    parts.append(f"(sweep completed in {result.elapsed_seconds:.1f}s)")
    return "\n".join(parts)


def format_table2() -> str:
    """Render Table 2 (the parameter space) with the scaled defaults."""
    rows = table2_rows()
    headers = ["Parameter", "Paper default", "Paper range", "Scaled default"]
    body = [
        [row["parameter"], row["paper_default"], row["paper_range"], row["scaled_default"]]
        for row in rows
    ]
    return "== Table 2: system parameters ==\n" + format_table(headers, body)


def format_summary(results: Dict[str, ExperimentResult]) -> str:
    """One-line-per-experiment overview across a batch of runs."""
    headers = ["Experiment", "Artifact", "Winner (default pt)", "Sweep time (s)"]
    body: List[List[object]] = []
    for experiment_id in sorted(results):
        result = results[experiment_id]
        winners = result.winner_per_point()
        middle = winners[len(winners) // 2] if winners else "-"
        body.append(
            [
                experiment_id,
                result.experiment.paper_artifact,
                middle,
                f"{result.elapsed_seconds:.1f}",
            ]
        )
    return format_table(headers, body)
