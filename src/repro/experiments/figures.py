"""Experiment definitions: one entry per table/figure of the paper's Section 6.

Every figure of the evaluation is represented as an :class:`Experiment`
holding the sweep points (x-axis values mapped onto the scaled workload), the
metric it reports (CPU time per timestamp or memory), and the qualitative
shape the paper observed — the claim EXPERIMENTS.md checks the measured
series against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.experiments.config import SCALED_DEFAULTS, SweepPoint, scale_cardinality
from repro.sim.workload import WorkloadConfig


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment (a figure or table of the paper)."""

    experiment_id: str
    paper_artifact: str
    description: str
    metric: str  # "cpu" or "memory"
    points: Tuple[SweepPoint, ...]
    algorithms: Tuple[str, ...] = ("OVH", "IMA", "GMA")
    expected_shape: str = ""

    @property
    def x_labels(self) -> Tuple[str, ...]:
        return tuple(point.label for point in self.points)


def _points(
    labels_and_values: Sequence[Tuple[str, object]],
    make_config: Callable[[object], WorkloadConfig],
) -> Tuple[SweepPoint, ...]:
    return tuple(
        SweepPoint(label=label, paper_value=value, config=make_config(value))
        for label, value in labels_and_values
    )


def _base(**overrides) -> WorkloadConfig:
    return SCALED_DEFAULTS.with_overrides(**overrides)


def build_experiments() -> Dict[str, Experiment]:
    """Construct the full registry of experiments (keyed by experiment id)."""
    experiments: Dict[str, Experiment] = {}

    def register(experiment: Experiment) -> None:
        experiments[experiment.experiment_id] = experiment

    # ------------------------------------------------------------------
    # Figure 13 — object and query cardinality
    # ------------------------------------------------------------------
    register(
        Experiment(
            experiment_id="fig13a",
            paper_artifact="Figure 13(a)",
            description="CPU time per timestamp versus object cardinality N",
            metric="cpu",
            points=_points(
                [("10K", 10_000), ("50K", 50_000), ("100K", 100_000),
                 ("150K", 150_000), ("200K", 200_000)],
                lambda n: _base(num_objects=scale_cardinality(int(n))),
            ),
            expected_shape=(
                "GMA < IMA < OVH throughout; cost dips between the sparsest and "
                "densest settings and all methods scale gracefully with N"
            ),
        )
    )
    register(
        Experiment(
            experiment_id="fig13b",
            paper_artifact="Figure 13(b)",
            description="CPU time per timestamp versus query cardinality Q",
            metric="cpu",
            points=_points(
                [("1K", 1_000), ("3K", 3_000), ("5K", 5_000), ("7K", 7_000), ("10K", 10_000)],
                lambda q: _base(num_queries=scale_cardinality(int(q))),
            ),
            expected_shape=(
                "all methods grow with Q; the GMA/IMA gap widens with Q because "
                "shared execution amortises the active-node maintenance"
            ),
        )
    )

    # ------------------------------------------------------------------
    # Figure 14 — k and edge agility
    # ------------------------------------------------------------------
    register(
        Experiment(
            experiment_id="fig14a",
            paper_artifact="Figure 14(a)",
            description="CPU time per timestamp versus the number of neighbors k",
            metric="cpu",
            points=_points(
                [("1", 1), ("25", 25), ("50", 50), ("100", 100), ("200", 200)],
                lambda k: _base(k=max(1, int(int(k) / 5)), num_objects=4_000),
            ),
            expected_shape=(
                "cost grows with k for every method; IMA beats GMA at k = 1 "
                "(active-node monitoring is pure overhead there) and GMA wins "
                "for larger k"
            ),
        )
    )
    register(
        Experiment(
            experiment_id="fig14b",
            paper_artifact="Figure 14(b)",
            description="CPU time per timestamp versus edge agility f_edg",
            metric="cpu",
            points=_points(
                [("1%", 0.01), ("2%", 0.02), ("4%", 0.04), ("8%", 0.08), ("16%", 0.16)],
                lambda f: _base(edge_agility=float(f)),
            ),
            expected_shape=(
                "IMA and GMA grow with edge agility (more expansion trees "
                "invalidated); GMA is the least sensitive"
            ),
        )
    )

    # ------------------------------------------------------------------
    # Figure 15 — object agility and speed
    # ------------------------------------------------------------------
    register(
        Experiment(
            experiment_id="fig15a",
            paper_artifact="Figure 15(a)",
            description="CPU time per timestamp versus object agility f_obj",
            metric="cpu",
            points=_points(
                [("0%", 0.0), ("5%", 0.05), ("10%", 0.10), ("15%", 0.15), ("20%", 0.20)],
                lambda f: _base(object_agility=float(f)),
            ),
            expected_shape="cost of IMA and GMA increases with object agility",
        )
    )
    register(
        Experiment(
            experiment_id="fig15b",
            paper_artifact="Figure 15(b)",
            description="CPU time per timestamp versus object speed v_obj",
            metric="cpu",
            points=_points(
                [("0.25", 0.25), ("0.5", 0.5), ("1", 1.0), ("2", 2.0), ("4", 4.0)],
                lambda v: _base(object_speed=float(v)),
            ),
            expected_shape=(
                "practically flat: an object update is a deletion plus an "
                "insertion, independent of how far the object jumped"
            ),
        )
    )

    # ------------------------------------------------------------------
    # Figure 16 — query agility and speed
    # ------------------------------------------------------------------
    register(
        Experiment(
            experiment_id="fig16a",
            paper_artifact="Figure 16(a)",
            description="CPU time per timestamp versus query agility f_qry",
            metric="cpu",
            points=_points(
                [("0%", 0.0), ("5%", 0.05), ("10%", 0.10), ("15%", 0.15), ("20%", 0.20)],
                lambda f: _base(query_agility=float(f)),
            ),
            expected_shape=(
                "IMA degrades with query agility (movements invalidate its "
                "expansion trees); GMA stays nearly flat"
            ),
        )
    )
    register(
        Experiment(
            experiment_id="fig16b",
            paper_artifact="Figure 16(b)",
            description="CPU time per timestamp versus query speed v_qry",
            metric="cpu",
            points=_points(
                [("0.25", 0.25), ("0.5", 0.5), ("1", 1.0), ("2", 2.0), ("4", 4.0)],
                lambda v: _base(query_speed=float(v)),
            ),
            expected_shape=(
                "GMA nearly constant; IMA increases slightly with query speed "
                "because less of the expansion tree survives a faster move"
            ),
        )
    )

    # ------------------------------------------------------------------
    # Figure 17 — distributions and network size
    # ------------------------------------------------------------------
    register(
        Experiment(
            experiment_id="fig17a",
            paper_artifact="Figure 17(a)",
            description="CPU time for the four object/query distribution combinations",
            metric="cpu",
            points=_points(
                [
                    ("U-obj/U-qry", ("uniform", "uniform")),
                    ("U-obj/G-qry", ("uniform", "gaussian")),
                    ("G-obj/U-qry", ("gaussian", "uniform")),
                    ("G-obj/G-qry", ("gaussian", "gaussian")),
                ],
                lambda pair: _base(
                    object_distribution=pair[0], query_distribution=pair[1]
                ),
            ),
            expected_shape=(
                "GMA is best for Gaussian (clustered) queries, IMA for uniform "
                "queries; both beat OVH everywhere"
            ),
        )
    )
    register(
        Experiment(
            experiment_id="fig17b",
            paper_artifact="Figure 17(b)",
            description="CPU time versus network size at constant densities",
            metric="cpu",
            points=_points(
                [("1K", 1_000), ("5K", 5_000), ("10K", 10_000), ("50K", 50_000)],
                lambda edges: _base(
                    network_edges=scale_cardinality(int(edges), scale=12),
                    num_objects=scale_cardinality(int(edges) * 10, scale=12),
                    num_queries=max(10, scale_cardinality(int(edges) // 2, scale=12)),
                ),
            ),
            expected_shape="roughly linear growth with the network size for all methods",
        )
    )

    # ------------------------------------------------------------------
    # Figure 18 — memory
    # ------------------------------------------------------------------
    register(
        Experiment(
            experiment_id="fig18a",
            paper_artifact="Figure 18(a)",
            description="Memory footprint versus query cardinality Q",
            metric="memory",
            points=_points(
                [("1K", 1_000), ("3K", 3_000), ("5K", 5_000), ("7K", 7_000), ("10K", 10_000)],
                lambda q: _base(num_queries=scale_cardinality(int(q))),
            ),
            algorithms=("IMA", "GMA"),
            expected_shape=(
                "IMA uses more memory than GMA and the gap widens with Q "
                "(one expansion tree per query versus per active node)"
            ),
        )
    )
    register(
        Experiment(
            experiment_id="fig18b",
            paper_artifact="Figure 18(b)",
            description="Memory footprint versus k",
            metric="memory",
            points=_points(
                [("1", 1), ("25", 25), ("50", 50), ("100", 100), ("200", 200)],
                lambda k: _base(k=max(1, int(int(k) / 5)), num_objects=4_000),
            ),
            algorithms=("IMA", "GMA"),
            expected_shape="IMA above GMA, gap widening with k (larger trees)",
        )
    )

    # ------------------------------------------------------------------
    # Figure 19 — Brinkhoff generator on the Oldenburg-like network
    # ------------------------------------------------------------------
    register(
        Experiment(
            experiment_id="fig19a",
            paper_artifact="Figure 19(a)",
            description="Brinkhoff-style workload: CPU time versus query cardinality",
            metric="cpu",
            points=_points(
                [("1K", 1_000), ("4K", 4_000), ("16K", 16_000), ("64K", 64_000)],
                lambda q: _base(
                    mobility_model="brinkhoff",
                    num_objects=scale_cardinality(64_000, scale=80),
                    num_queries=scale_cardinality(int(q), scale=80),
                    network_edges=500,
                ),
            ),
            expected_shape="the GMA advantage grows with Q, as in Figure 13(b)",
        )
    )
    register(
        Experiment(
            experiment_id="fig19b",
            paper_artifact="Figure 19(b)",
            description="Brinkhoff-style workload: CPU time versus k",
            metric="cpu",
            points=_points(
                [("1", 1), ("25", 25), ("50", 50), ("100", 100), ("200", 200)],
                lambda k: _base(
                    mobility_model="brinkhoff",
                    num_objects=scale_cardinality(64_000, scale=80),
                    num_queries=scale_cardinality(8_000, scale=80),
                    network_edges=500,
                    k=max(1, int(int(k) / 5)),
                ),
            ),
            expected_shape="same as Figure 14(a): IMA wins at k = 1, GMA elsewhere",
        )
    )

    return experiments


#: Singleton registry used by the runner, the CLI and the benchmarks.
EXPERIMENTS: Dict[str, Experiment] = build_experiments()


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (e.g. ``"fig14a"``).

    Raises:
        ExperimentError: if the id is unknown.
    """
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known ids: {sorted(EXPERIMENTS)}"
        ) from exc


def list_experiments() -> List[Experiment]:
    """All experiments in a stable order."""
    return [EXPERIMENTS[key] for key in sorted(EXPERIMENTS)]
