"""Command-line entry point for the experiment harness.

Installed as ``repro-experiments`` (see ``pyproject.toml``).  Typical usage::

    repro-experiments list                 # show every figure/table id
    repro-experiments table2               # print the parameter space
    repro-experiments run fig14a           # regenerate one figure
    repro-experiments run fig14a --validate
    repro-experiments run-all --timestamps 2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.figures import get_experiment, list_experiments
from repro.experiments.reporting import (
    format_experiment,
    format_summary,
    format_table,
    format_table2,
)
from repro.experiments.runner import run_all, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation figures of 'Continuous Nearest "
        "Neighbor Monitoring in Road Networks' (VLDB 2006).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list every experiment id")
    subparsers.add_parser("table2", help="print Table 2 (the parameter space)")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="e.g. fig13a, fig14b, fig18a")
    run_parser.add_argument(
        "--validate",
        action="store_true",
        help="cross-check all algorithms' results at every timestamp",
    )
    run_parser.add_argument(
        "--timestamps", type=int, default=None, help="override the number of timestamps"
    )
    run_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        help="subset of OVH IMA GMA to run",
    )

    all_parser = subparsers.add_parser("run-all", help="run every experiment")
    all_parser.add_argument("--validate", action="store_true")
    all_parser.add_argument("--timestamps", type=int, default=None)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        rows = [
            [e.experiment_id, e.paper_artifact, e.metric, e.description]
            for e in list_experiments()
        ]
        print(format_table(["id", "artifact", "metric", "description"], rows))
        return 0

    if args.command == "table2":
        print(format_table2())
        return 0

    if args.command == "run":
        experiment = get_experiment(args.experiment_id)
        result = run_experiment(
            experiment,
            algorithms=args.algorithms,
            validate=args.validate,
            timestamps=args.timestamps,
        )
        print(format_experiment(result))
        return 0

    if args.command == "run-all":
        results = run_all(validate=args.validate, timestamps=args.timestamps)
        for experiment_id in sorted(results):
            print(format_experiment(results[experiment_id]))
            print()
        print(format_summary(results))
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
