"""Spatial primitives: planar geometry and the PMR quadtree edge index."""

from repro.spatial.geometry import Point, Rect, Segment, segment_intersection
from repro.spatial.pmr_quadtree import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_SPLIT_THRESHOLD,
    PMRQuadtree,
)

__all__ = [
    "Point",
    "Rect",
    "Segment",
    "segment_intersection",
    "PMRQuadtree",
    "DEFAULT_SPLIT_THRESHOLD",
    "DEFAULT_MAX_DEPTH",
]
