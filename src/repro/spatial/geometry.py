"""Planar geometry primitives used by the spatial index and the generators.

The road network lives in a two-dimensional Euclidean workspace.  The PMR
quadtree (the paper's spatial index *SI*) indexes edges as straight line
segments between their endpoint coordinates, and the workload generators
place objects and queries by Euclidean coordinates before snapping them to
the nearest edge.  This module provides the required primitives: points,
axis-aligned rectangles and segments, together with the distance and
intersection predicates the rest of the library needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

_EPS = 1e-12


@dataclass(frozen=True)
class Point:
    """A point in the two-dimensional workspace.

    Example::

        point = Point(3.0, 4.0)
        print(point.distance_to(Point(0.0, 0.0)))   # 5.0
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to *other*."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Example::

        rect = Rect(0.0, 0.0, 100.0, 50.0)
        assert rect.contains_point(Point(10.0, 10.0))
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate rectangle: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """Bounding rectangle of a non-empty collection of points."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build a rectangle from an empty point set")
        return cls(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def area(self) -> float:
        return self.width * self.height

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Point, tolerance: float = _EPS) -> bool:
        """Closed-rectangle containment test."""
        return (
            self.min_x - tolerance <= point.x <= self.max_x + tolerance
            and self.min_y - tolerance <= point.y <= self.max_y + tolerance
        )

    def intersects(self, other: "Rect") -> bool:
        """Closed-rectangle overlap test."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def intersects_segment(self, segment: "Segment") -> bool:
        """Return True if the segment touches the closed rectangle."""
        return segment.intersects_rect(self)

    # ------------------------------------------------------------------
    # subdivision (used by the quadtree)
    # ------------------------------------------------------------------
    def quadrants(self) -> Tuple["Rect", "Rect", "Rect", "Rect"]:
        """Split into NW, NE, SW, SE quadrants (in that order)."""
        cx, cy = self.center.x, self.center.y
        return (
            Rect(self.min_x, cy, cx, self.max_y),  # NW
            Rect(cx, cy, self.max_x, self.max_y),  # NE
            Rect(self.min_x, self.min_y, cx, cy),  # SW
            Rect(cx, self.min_y, self.max_x, cy),  # SE
        )

    def expanded(self, margin: float) -> "Rect":
        """Return a copy grown by *margin* on every side."""
        return Rect(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )


@dataclass(frozen=True)
class Segment:
    """A straight line segment between two points (a network edge's shape).

    Example::

        segment = Segment(Point(0.0, 0.0), Point(10.0, 0.0))
        print(segment.project_fraction(Point(3.0, 4.0)))   # 0.3
    """

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def bounding_box(self) -> Rect:
        """Tight axis-aligned bounding rectangle."""
        return Rect(
            min(self.start.x, self.end.x),
            min(self.start.y, self.end.y),
            max(self.start.x, self.end.x),
            max(self.start.y, self.end.y),
        )

    # ------------------------------------------------------------------
    # point relations
    # ------------------------------------------------------------------
    def point_at_fraction(self, t: float) -> Point:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        t = min(1.0, max(0.0, t))
        return Point(
            self.start.x + t * (self.end.x - self.start.x),
            self.start.y + t * (self.end.y - self.start.y),
        )

    def project_fraction(self, point: Point) -> float:
        """Parameter in [0, 1] of the closest point on the segment to *point*."""
        dx = self.end.x - self.start.x
        dy = self.end.y - self.start.y
        norm_sq = dx * dx + dy * dy
        if norm_sq <= _EPS:
            # Degenerate segment: the parametric projection is numerically
            # meaningless, so snap to whichever endpoint is closer (snapping
            # always to the start can be off by the full segment length).
            if point.distance_to(self.start) <= point.distance_to(self.end):
                return 0.0
            return 1.0
        t = ((point.x - self.start.x) * dx + (point.y - self.start.y) * dy) / norm_sq
        return min(1.0, max(0.0, t))

    def distance_to_point(self, point: Point) -> float:
        """Euclidean distance from *point* to the closest point on the segment."""
        t = self.project_fraction(point)
        return self.point_at_fraction(t).distance_to(point)

    # ------------------------------------------------------------------
    # rectangle intersection (for quadtree insertion)
    # ------------------------------------------------------------------
    def intersects_rect(self, rect: Rect) -> bool:
        """Return True if the segment intersects the closed rectangle.

        Uses the Liang-Barsky parametric clipping test, which is robust for
        the axis-aligned case and does not allocate.
        """
        if rect.contains_point(self.start) or rect.contains_point(self.end):
            return True
        box = self.bounding_box
        if not rect.intersects(box):
            return False

        # Liang-Barsky clipping of the parametric segment against the rect.
        dx = self.end.x - self.start.x
        dy = self.end.y - self.start.y
        t_min, t_max = 0.0, 1.0
        for p, q in (
            (-dx, self.start.x - rect.min_x),
            (dx, rect.max_x - self.start.x),
            (-dy, self.start.y - rect.min_y),
            (dy, rect.max_y - self.start.y),
        ):
            if abs(p) <= _EPS:
                if q < 0:
                    return False
                continue
            t = q / p
            if p < 0:
                t_min = max(t_min, t)
            else:
                t_max = min(t_max, t)
            if t_min > t_max:
                return False
        return True


def segment_intersection(a: Segment, b: Segment) -> Optional[Point]:
    """Return the intersection point of two segments, or None.

    Collinear overlapping segments return one shared endpoint (sufficient for
    the generators' planarity checks).
    """
    p, r_end = a.start, a.end
    q, s_end = b.start, b.end
    r = (r_end.x - p.x, r_end.y - p.y)
    s = (s_end.x - q.x, s_end.y - q.y)
    denom = r[0] * s[1] - r[1] * s[0]
    qp = (q.x - p.x, q.y - p.y)
    if abs(denom) <= _EPS:
        # Parallel: check collinear overlap via endpoints.
        if abs(qp[0] * r[1] - qp[1] * r[0]) > _EPS:
            return None
        for candidate in (b.start, b.end, a.start, a.end):
            if a.distance_to_point(candidate) <= 1e-9 and b.distance_to_point(candidate) <= 1e-9:
                return candidate
        return None
    t = (qp[0] * s[1] - qp[1] * s[0]) / denom
    u = (qp[0] * r[1] - qp[1] * r[0]) / denom
    if -_EPS <= t <= 1 + _EPS and -_EPS <= u <= 1 + _EPS:
        return Point(p.x + t * r[0], p.y + t * r[1])
    return None
