"""PMR quadtree over road-network edges (the paper's spatial index *SI*).

The monitoring server must map raw ``(x, y)`` coordinates arriving in object
and query updates to the network edge that contains them (Section 3 of the
paper).  The paper uses a PMR quadtree [Hoel & Samet 1991]: a quadtree over
the workspace whose leaf quads store the ids of the edges (line segments)
intersecting them.  A leaf splits when the number of stored edges exceeds a
*splitting threshold*; unlike a plain bucket quadtree the threshold is only
applied at insertion time, so existing leaves may hold more edges than the
threshold (this bounds the depth for degenerate inputs).

The index supports:

* ``insert(edge_id, segment)`` — add an edge.
* ``remove(edge_id)`` — delete an edge (needed when networks are edited).
* ``find_edge(point)`` / ``nearest_edge(point)`` — locate the edge containing
  (or closest to) a coordinate pair, the operation the monitoring server
  performs for every incoming update.
* ``edges_in_rect(rect)`` — range query, used by generators and diagnostics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import SpatialIndexError
from repro.spatial.geometry import Point, Rect, Segment

try:  # numpy accelerates the bulk nearest-edge path; pure Python otherwise.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Default number of edges a leaf holds before it splits on insertion.
DEFAULT_SPLIT_THRESHOLD = 8

#: Maximum tree depth; quads smaller than workspace / 2**depth never split.
DEFAULT_MAX_DEPTH = 16


class _QuadNode:
    """A node of the PMR quadtree (leaf or internal)."""

    __slots__ = ("rect", "depth", "edge_ids", "children")

    def __init__(self, rect: Rect, depth: int) -> None:
        self.rect = rect
        self.depth = depth
        self.edge_ids: List[int] = []
        self.children: Optional[Tuple["_QuadNode", ...]] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class PMRQuadtree:
    """PMR quadtree mapping 2-D coordinates to road-network edges.

    Example::

        index = PMRQuadtree(network.bounding_box(margin=1.0))
        for edge in network.edges():
            index.insert(edge.edge_id, network.edge_segment(edge.edge_id))
        edge_id, distance = index.nearest_edge(Point(120.0, 80.0))
    """

    def __init__(
        self,
        bounds: Rect,
        split_threshold: int = DEFAULT_SPLIT_THRESHOLD,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        """Create an empty index covering *bounds*.

        Args:
            bounds: workspace rectangle; inserting an edge outside it raises.
            split_threshold: leaf capacity that triggers a split on insert.
            max_depth: hard depth limit protecting against degenerate input.
        """
        if split_threshold < 1:
            raise SpatialIndexError(f"split threshold must be >= 1, got {split_threshold}")
        if max_depth < 1:
            raise SpatialIndexError(f"max depth must be >= 1, got {max_depth}")
        self._root = _QuadNode(bounds, depth=0)
        self._split_threshold = split_threshold
        self._max_depth = max_depth
        self._segments: Dict[int, Segment] = {}

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._segments)

    def __contains__(self, edge_id: int) -> bool:
        return edge_id in self._segments

    @property
    def bounds(self) -> Rect:
        """The workspace rectangle this index covers."""
        return self._root.rect

    @property
    def split_threshold(self) -> int:
        return self._split_threshold

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def insert(self, edge_id: int, segment: Segment) -> None:
        """Insert *segment* under *edge_id*.

        Raises:
            SpatialIndexError: if the id is already present or the segment
                lies entirely outside the workspace bounds.
        """
        if edge_id in self._segments:
            raise SpatialIndexError(f"edge {edge_id} is already indexed")
        if not segment.intersects_rect(self._root.rect):
            raise SpatialIndexError(
                f"edge {edge_id} lies outside the index bounds {self._root.rect}"
            )
        self._segments[edge_id] = segment
        self._insert_into(self._root, edge_id, segment)

    def bulk_load(self, edges: Iterable[Tuple[int, Segment]]) -> None:
        """Insert many edges (convenience wrapper over :meth:`insert`)."""
        for edge_id, segment in edges:
            self.insert(edge_id, segment)

    def remove(self, edge_id: int) -> None:
        """Remove an edge from the index.

        Raises:
            SpatialIndexError: if the edge is not indexed.
        """
        segment = self._segments.pop(edge_id, None)
        if segment is None:
            raise SpatialIndexError(f"edge {edge_id} is not indexed")
        self._remove_from(self._root, edge_id, segment)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def find_edge(self, point: Point, tolerance: float = 1e-6) -> Optional[int]:
        """Return the id of an edge passing through *point* (within tolerance).

        If several edges pass within the tolerance (e.g. at an intersection
        node) the closest one is returned.  Returns ``None`` when no edge is
        within the tolerance; callers that must always resolve a location
        should use :meth:`nearest_edge` instead.
        """
        best_id: Optional[int] = None
        best_dist = tolerance
        for edge_id in self._candidate_edges(point):
            dist = self._segments[edge_id].distance_to_point(point)
            if dist <= best_dist:
                best_dist = dist
                best_id = edge_id
        return best_id

    def nearest_edge(self, point: Point) -> Tuple[int, float]:
        """Return ``(edge_id, distance)`` of the edge closest to *point*.

        Performs a best-first traversal of the quadtree so that only quads
        that can contain a closer edge are visited.

        Raises:
            SpatialIndexError: if the index is empty.
        """
        if not self._segments:
            raise SpatialIndexError("nearest_edge on an empty index")

        best_id: Optional[int] = None
        best_dist = float("inf")
        stack: List[_QuadNode] = [self._root]
        while stack:
            node = stack.pop()
            if self._rect_min_distance(node.rect, point) >= best_dist:
                continue
            if node.is_leaf:
                for edge_id in node.edge_ids:
                    dist = self._segments[edge_id].distance_to_point(point)
                    if dist < best_dist:
                        best_dist = dist
                        best_id = edge_id
            else:
                assert node.children is not None
                # Visit children nearest-first for better pruning.
                ordered = sorted(
                    node.children,
                    key=lambda child: self._rect_min_distance(child.rect, point),
                    reverse=True,
                )
                stack.extend(ordered)
        assert best_id is not None
        return best_id, best_dist

    def nearest_edges_bulk(self, points: Sequence[Point]) -> List[Tuple[int, float]]:
        """Vectorized :meth:`nearest_edge` for a batch of points.

        Points are grouped by the leaf quad that contains them; each group is
        matched against the leaf's edges in one numpy broadcast.  A per-point
        answer is exact whenever the best in-leaf distance does not exceed
        the point's distance to the leaf boundary (every edge *not* stored in
        the leaf misses the leaf entirely, so it lies at least that far
        away); the remaining points fall back to the exact best-first search.
        Without numpy the method degrades to a plain per-point loop.

        Raises:
            SpatialIndexError: if the index is empty.
        """
        if not self._segments:
            raise SpatialIndexError("nearest_edges_bulk on an empty index")
        if _np is None or len(points) < 4:
            return [self.nearest_edge(point) for point in points]

        results: List[Optional[Tuple[int, float]]] = [None] * len(points)
        groups: Dict[int, List[int]] = {}
        leaves: Dict[int, _QuadNode] = {}
        root = self._root
        for position, point in enumerate(points):
            node = root
            if not node.rect.contains_point(point):
                continue  # outside the workspace: exact fallback below
            while not node.is_leaf:
                assert node.children is not None
                for child in node.children:
                    if child.rect.contains_point(point):
                        node = child
                        break
                else:  # pragma: no cover - quadrants tile the parent
                    break
            if node.is_leaf and node.edge_ids:
                key = id(node)
                groups.setdefault(key, []).append(position)
                leaves[key] = node

        for key, positions in groups.items():
            leaf = leaves[key]
            segments = [self._segments[edge_id] for edge_id in leaf.edge_ids]
            sx = _np.array([seg.start.x for seg in segments])
            sy = _np.array([seg.start.y for seg in segments])
            dx = _np.array([seg.end.x - seg.start.x for seg in segments])
            dy = _np.array([seg.end.y - seg.start.y for seg in segments])
            norm_sq = dx * dx + dy * dy
            safe_norm = _np.where(norm_sq > 0.0, norm_sq, 1.0)
            px = _np.array([points[p].x for p in positions])[:, None]
            py = _np.array([points[p].y for p in positions])[:, None]
            t = ((px - sx) * dx + (py - sy) * dy) / safe_norm
            t = _np.clip(_np.where(norm_sq > 0.0, t, 0.0), 0.0, 1.0)
            cx = sx + t * dx
            cy = sy + t * dy
            dist = _np.hypot(px - cx, py - cy)
            best_column = _np.argmin(dist, axis=1)
            best_dist = dist[_np.arange(len(positions)), best_column]
            rect = leaf.rect
            for row, position in enumerate(positions):
                point = points[position]
                border = min(
                    point.x - rect.min_x,
                    rect.max_x - point.x,
                    point.y - rect.min_y,
                    rect.max_y - point.y,
                )
                if best_dist[row] <= border:
                    results[position] = (
                        leaf.edge_ids[int(best_column[row])],
                        float(best_dist[row]),
                    )

        return [
            result if result is not None else self.nearest_edge(points[position])
            for position, result in enumerate(results)
        ]

    def edges_in_rect(self, rect: Rect) -> Set[int]:
        """Return the ids of all edges intersecting *rect*."""
        result: Set[int] = set()
        stack: List[_QuadNode] = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(rect):
                continue
            if node.is_leaf:
                for edge_id in node.edge_ids:
                    if self._segments[edge_id].intersects_rect(rect):
                        result.add(edge_id)
            else:
                assert node.children is not None
                stack.extend(node.children)
        return result

    def segment_of(self, edge_id: int) -> Segment:
        """Return the indexed segment for *edge_id*.

        Raises:
            SpatialIndexError: if the edge is not indexed.
        """
        try:
            return self._segments[edge_id]
        except KeyError as exc:
            raise SpatialIndexError(f"edge {edge_id} is not indexed") from exc

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def leaf_count(self) -> int:
        """Number of leaf quads (used by tests and memory accounting)."""
        return sum(1 for node in self._iter_nodes() if node.is_leaf)

    def depth(self) -> int:
        """Maximum depth of any node."""
        return max((node.depth for node in self._iter_nodes()), default=0)

    def statistics(self) -> Dict[str, float]:
        """Summary statistics useful for memory accounting and debugging."""
        leaves = [node for node in self._iter_nodes() if node.is_leaf]
        entries = sum(len(node.edge_ids) for node in leaves)
        return {
            "edges": float(len(self._segments)),
            "leaves": float(len(leaves)),
            "entries": float(entries),
            "max_depth": float(self.depth()),
            "avg_entries_per_leaf": entries / len(leaves) if leaves else 0.0,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _iter_nodes(self) -> Iterator[_QuadNode]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if node.children is not None:
                stack.extend(node.children)

    def _candidate_edges(self, point: Point) -> List[int]:
        """Edges stored in the leaf quad covering *point* (empty if outside)."""
        node = self._root
        if not node.rect.contains_point(point):
            return []
        while not node.is_leaf:
            assert node.children is not None
            for child in node.children:
                if child.rect.contains_point(point):
                    node = child
                    break
            else:  # pragma: no cover - defensive, quadrants tile the parent
                return []
        return list(node.edge_ids)

    def _insert_into(self, node: _QuadNode, edge_id: int, segment: Segment) -> None:
        if not segment.intersects_rect(node.rect):
            return
        if node.is_leaf:
            node.edge_ids.append(edge_id)
            if len(node.edge_ids) > self._split_threshold and node.depth < self._max_depth:
                self._split(node)
            return
        assert node.children is not None
        for child in node.children:
            self._insert_into(child, edge_id, segment)

    def _split(self, node: _QuadNode) -> None:
        node.children = tuple(
            _QuadNode(rect, node.depth + 1) for rect in node.rect.quadrants()
        )
        edge_ids = node.edge_ids
        node.edge_ids = []
        for edge_id in edge_ids:
            segment = self._segments[edge_id]
            for child in node.children:
                if segment.intersects_rect(child.rect):
                    child.edge_ids.append(edge_id)
        # PMR semantics: the split is *not* applied recursively, children may
        # temporarily exceed the threshold; they split on their own next insert.

    def _remove_from(self, node: _QuadNode, edge_id: int, segment: Segment) -> None:
        if not segment.intersects_rect(node.rect):
            return
        if node.is_leaf:
            try:
                node.edge_ids.remove(edge_id)
            except ValueError:
                pass
            return
        assert node.children is not None
        for child in node.children:
            self._remove_from(child, edge_id, segment)
        # Collapse children that became empty leaves to keep the tree tidy.
        if all(child.is_leaf and not child.edge_ids for child in node.children):
            node.children = None
            node.edge_ids = []

    @staticmethod
    def _rect_min_distance(rect: Rect, point: Point) -> float:
        dx = max(rect.min_x - point.x, 0.0, point.x - rect.max_x)
        dy = max(rect.min_y - point.y, 0.0, point.y - rect.max_y)
        return (dx * dx + dy * dy) ** 0.5
