"""Shared utilities: heaps, interval algebra, RNG helpers and validation."""

from repro.utils.heap import IndexedMinHeap, LazyMinHeap
from repro.utils.intervals import (
    Interval,
    IntervalSet,
    influencing_intervals,
    influencing_intervals_from_point,
    normalize_intervals,
    point_distance_via_endpoints,
)
from repro.utils.rng import (
    DEFAULT_SEED,
    bounded_gauss,
    derive_rng,
    make_rng,
    sample_fraction,
    shuffled,
    weighted_choice,
)
from repro.utils.validation import (
    almost_equal,
    require_fraction,
    require_in_range,
    require_non_negative,
    require_non_negative_int,
    require_positive,
    require_positive_int,
)

__all__ = [
    "IndexedMinHeap",
    "LazyMinHeap",
    "Interval",
    "IntervalSet",
    "influencing_intervals",
    "influencing_intervals_from_point",
    "normalize_intervals",
    "point_distance_via_endpoints",
    "DEFAULT_SEED",
    "bounded_gauss",
    "derive_rng",
    "make_rng",
    "sample_fraction",
    "shuffled",
    "weighted_choice",
    "almost_equal",
    "require_fraction",
    "require_in_range",
    "require_non_negative",
    "require_non_negative_int",
    "require_positive",
    "require_positive_int",
]
