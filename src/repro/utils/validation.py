"""Small argument-validation helpers shared across the library.

These helpers keep validation logic (and its error messages) consistent
between the graph model, the monitoring algorithms and the simulation
configuration objects.
"""

from __future__ import annotations

import math
from typing import Optional


def require_positive(value: float, name: str) -> float:
    """Validate that *value* is a positive finite number and return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Validate that *value* is a non-negative finite number and return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def require_fraction(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def require_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_non_negative_int(value: int, name: str) -> int:
    """Validate that *value* is a non-negative integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def require_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> float:
    """Validate that *value* lies in the closed range [low, high]."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if low is not None and value < low:
        raise ValueError(f"{name} must be >= {low}, got {value!r}")
    if high is not None and value > high:
        raise ValueError(f"{name} must be <= {high}, got {value!r}")
    return float(value)


def almost_equal(a: float, b: float, tolerance: float = 1e-6) -> bool:
    """Compare two distances with an absolute-plus-relative tolerance.

    Network distances are sums of edge weights; accumulated floating-point
    error grows with path length, so a pure absolute tolerance is too strict
    for long paths and a pure relative one too loose near zero.
    """
    return abs(a - b) <= tolerance + tolerance * max(abs(a), abs(b))
