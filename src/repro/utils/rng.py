"""Deterministic random-number helpers for reproducible experiments.

The paper's evaluation is a simulation: initial object/query placement,
random walks, edge-weight fluctuations, and agility sampling all draw random
numbers.  To make every experiment, test and benchmark reproducible, the
library never touches the global :mod:`random` state; instead each component
receives (or derives) its own :class:`random.Random` instance through the
helpers in this module.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence, TypeVar, Union

T = TypeVar("T")

RandomLike = Union[random.Random, int, None]

#: Seed used when a caller passes ``None``; chosen once so that "default"
#: runs are still deterministic across processes.
DEFAULT_SEED = 20060912  # the paper's conference date: 12 September 2006


def make_rng(seed_or_rng: RandomLike = None) -> random.Random:
    """Return a :class:`random.Random` for *seed_or_rng*.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (the library default seed).
    """
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    if seed_or_rng is None:
        return random.Random(DEFAULT_SEED)
    return random.Random(seed_or_rng)


def derive_rng(rng: random.Random, *labels: object) -> random.Random:
    """Derive an independent child generator from *rng* and *labels*.

    Splitting a generator by drawing a fresh seed keeps sub-components
    (placement, mobility, traffic, ...) statistically independent while the
    whole run remains a pure function of the top-level seed.  The label hash
    uses :mod:`hashlib` rather than :func:`hash` so that derivations are
    stable across processes (``PYTHONHASHSEED`` does not affect them).
    """
    import hashlib

    material = ",".join(str(label) for label in labels).encode("utf-8")
    digest = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
    seed = rng.getrandbits(64) ^ digest
    return random.Random(seed)


def sample_fraction(rng: random.Random, items: Sequence[T], fraction: float) -> list[T]:
    """Sample ``round(fraction * len(items))`` distinct items.

    Used for the agility parameters: at every timestamp a fraction
    ``f_obj`` / ``f_qry`` / ``f_edg`` of the objects / queries / edges
    receives an update.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    count = int(round(fraction * len(items)))
    count = min(count, len(items))
    if count == 0:
        return []
    return rng.sample(list(items), count)


def bounded_gauss(
    rng: random.Random,
    mean: float,
    std: float,
    low: float,
    high: float,
    max_attempts: int = 32,
) -> float:
    """Draw a Gaussian variate clamped to ``[low, high]`` by rejection.

    Falls back to clamping after *max_attempts* rejections so the function
    always terminates even with very tight bounds.
    """
    if low > high:
        raise ValueError(f"invalid bounds: low {low} > high {high}")
    for _ in range(max_attempts):
        value = rng.gauss(mean, std)
        if low <= value <= high:
            return value
    return min(max(rng.gauss(mean, std), low), high)


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Choose one item with probability proportional to its weight."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0 or not math.isfinite(total):
        raise ValueError("weights must sum to a positive finite value")
    target = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if target <= cumulative:
            return item
    return items[-1]


def shuffled(rng: random.Random, items: Iterable[T]) -> list[T]:
    """Return a new list with the items in random order."""
    result = list(items)
    rng.shuffle(result)
    return result
