"""One-dimensional interval algebra used for edge *influencing intervals*.

Every edge of the road network is parameterised by an offset in
``[0, weight]`` measured from its start node.  The *influencing interval* of
an edge with respect to a query q is the set of offsets whose network
distance from q is at most ``q.kNN_dist`` (Section 3 of the paper).  Such a
set is always the union of at most two closed intervals — one growing from
each endpoint of the edge — so this module provides a tiny, exact interval
type plus the operations the monitoring algorithms need: membership tests,
unions, intersection with a changed radius, and the computation of the
influencing intervals themselves from endpoint distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

_EPS = 1e-9

#: Public alias of the span-merge tolerance, for callers that inline span
#: arithmetic (e.g. the CSR influence-map hot loop) and must stay exactly
#: consistent with :func:`influence_spans`.
SPAN_EPS = _EPS


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[low, high]`` on an edge's offset axis."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high + _EPS:
            raise ValueError(f"interval low {self.low} exceeds high {self.high}")

    @property
    def length(self) -> float:
        """Length of the interval (zero for degenerate point intervals)."""
        return max(0.0, self.high - self.low)

    def contains(self, offset: float, tolerance: float = _EPS) -> bool:
        """Return True if *offset* lies inside the closed interval."""
        return self.low - tolerance <= offset <= self.high + tolerance

    def overlaps(self, other: "Interval", tolerance: float = _EPS) -> bool:
        """Return True if the two closed intervals intersect."""
        return self.low <= other.high + tolerance and other.low <= self.high + tolerance

    def merge(self, other: "Interval") -> "Interval":
        """Return the smallest interval containing both (assumes overlap)."""
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def clamp(self, low: float, high: float) -> Optional["Interval"]:
        """Intersect with ``[low, high]``; return None if empty."""
        new_low = max(self.low, low)
        new_high = min(self.high, high)
        if new_low > new_high + _EPS:
            return None
        return Interval(new_low, max(new_low, new_high))


class IntervalSet:
    """A normalised union of disjoint closed intervals on one edge."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: List[Interval] = normalize_intervals(intervals)

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def __iter__(self):
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __repr__(self) -> str:
        parts = ", ".join(f"[{iv.low:.3f}, {iv.high:.3f}]" for iv in self._intervals)
        return f"IntervalSet({parts})"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> Sequence[Interval]:
        """The normalised, sorted, disjoint intervals."""
        return tuple(self._intervals)

    def contains(self, offset: float, tolerance: float = _EPS) -> bool:
        """Return True if *offset* falls in any member interval."""
        return any(iv.contains(offset, tolerance) for iv in self._intervals)

    def total_length(self) -> float:
        """Sum of the lengths of the member intervals."""
        return sum(iv.length for iv in self._intervals)

    def covers_edge(self, weight: float, tolerance: float = _EPS) -> bool:
        """Return True if the set covers the entire ``[0, weight]`` range."""
        if len(self._intervals) != 1:
            return False
        only = self._intervals[0]
        return only.low <= tolerance and only.high >= weight - tolerance

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Return the union of the two sets."""
        return IntervalSet(list(self._intervals) + list(other._intervals))


def normalize_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort intervals and merge the overlapping / touching ones."""
    ordered = sorted(intervals, key=lambda iv: (iv.low, iv.high))
    merged: List[Interval] = []
    for interval in ordered:
        if merged and merged[-1].overlaps(interval):
            merged[-1] = merged[-1].merge(interval)
        else:
            merged.append(interval)
    return merged


def influencing_intervals(
    weight: float,
    dist_start: float,
    dist_end: float,
    radius: float,
) -> IntervalSet:
    """Compute the influencing interval(s) of an edge for a query.

    The network distance of the point at offset ``t`` (from the start node)
    is ``min(dist_start + t, dist_end + (weight - t))`` where ``dist_start``
    and ``dist_end`` are the network distances of the edge endpoints from the
    query (``float('inf')`` when an endpoint is unreachable / unverified).
    The influencing interval is the set of offsets whose distance is at most
    *radius* — a union of at most two intervals, one anchored at each
    endpoint, which may merge into one when they meet (see Figure 3 of the
    paper for the two-mark case).

    Args:
        weight: the current weight (length) of the edge, must be positive.
        dist_start: network distance of ``edge.start`` from the query.
        dist_end: network distance of ``edge.end`` from the query.
        radius: the query's current ``kNN_dist``.

    Returns:
        The (possibly empty) influencing interval set in offset coordinates.
    """
    if weight <= 0:
        raise ValueError(f"edge weight must be positive, got {weight}")
    if radius == float("inf"):
        # An infinite radius influences the whole edge provided at least one
        # endpoint is reachable at all.
        if dist_start == float("inf") and dist_end == float("inf"):
            return IntervalSet()
        return IntervalSet([Interval(0.0, weight)])

    pieces: List[Interval] = []
    if dist_start <= radius:
        reach = radius - dist_start
        pieces.append(Interval(0.0, min(weight, reach)))
    if dist_end <= radius:
        reach = radius - dist_end
        pieces.append(Interval(max(0.0, weight - reach), weight))
    return IntervalSet(pieces)


def influencing_intervals_from_point(
    weight: float,
    query_offset: float,
    radius: float,
) -> IntervalSet:
    """Influencing interval of the edge that *contains* the query itself.

    Points on the query's own edge are reached directly along the edge, so
    the distance of offset ``t`` is ``abs(t - query_offset)`` (a shorter path
    leaving and re-entering the edge cannot exist for points on the same
    edge segment between the query and the point).  The result is clamped to
    ``[0, weight]``.

    Note: for points on the query's edge but on the far side of an endpoint
    with a shortcut through the network the straight-line-along-edge distance
    is still an upper bound; callers combine this set with
    :func:`influencing_intervals` computed from the endpoint distances, so
    the union is exact.
    """
    if weight <= 0:
        raise ValueError(f"edge weight must be positive, got {weight}")
    if not 0.0 <= query_offset <= weight + _EPS:
        raise ValueError(
            f"query offset {query_offset} outside the edge range [0, {weight}]"
        )
    if radius == float("inf"):
        return IntervalSet([Interval(0.0, weight)])
    low = max(0.0, query_offset - radius)
    high = min(weight, query_offset + radius)
    if low > high:
        return IntervalSet()
    return IntervalSet([Interval(low, high)])


#: A lightweight influencing-interval representation: ``((low, high), ...)``
#: tuples in edge-offset coordinates.  The monitoring hot path uses these
#: plain tuples instead of :class:`IntervalSet` objects to avoid allocation
#: overhead; the two representations are interchangeable in meaning.
Spans = Tuple[Tuple[float, float], ...]


def influence_spans(
    weight: float,
    dist_start: float,
    dist_end: float,
    radius: float,
) -> Spans:
    """Plain-tuple version of :func:`influencing_intervals` (hot path).

    Returns at most two ``(low, high)`` pairs, merged into one when they
    overlap.  Semantics are identical to :func:`influencing_intervals`.
    """
    if radius == float("inf"):
        if dist_start == float("inf") and dist_end == float("inf"):
            return ()
        return ((0.0, weight),)
    low_piece = None
    high_piece = None
    if dist_start <= radius:
        low_piece = (0.0, min(weight, radius - dist_start))
    if dist_end <= radius:
        high_piece = (max(0.0, weight - (radius - dist_end)), weight)
    if low_piece is None and high_piece is None:
        return ()
    if low_piece is None:
        return (high_piece,)
    if high_piece is None:
        return (low_piece,)
    if high_piece[0] <= low_piece[1] + _EPS:
        return ((0.0, weight),)
    return (low_piece, high_piece)


def point_spans(weight: float, query_offset: float, radius: float) -> Spans:
    """Plain-tuple version of :func:`influencing_intervals_from_point`."""
    if radius == float("inf"):
        return ((0.0, weight),)
    low = max(0.0, query_offset - radius)
    high = min(weight, query_offset + radius)
    if low > high:
        return ()
    return ((low, high),)


def merge_spans(first: Spans, second: Spans) -> Spans:
    """Union of two span tuples (normalised: sorted, non-overlapping)."""
    pieces = sorted(list(first) + list(second))
    merged: List[Tuple[float, float]] = []
    for low, high in pieces:
        if merged and low <= merged[-1][1] + _EPS:
            if high > merged[-1][1]:
                merged[-1] = (merged[-1][0], high)
        else:
            merged.append((low, high))
    return tuple(merged)


def point_in_spans(spans: Spans, offset: float, tolerance: float = 1e-6) -> bool:
    """True when *offset* lies inside any span (closed, with tolerance)."""
    for low, high in spans:
        if low - tolerance <= offset <= high + tolerance:
            return True
    return False


def point_distance_via_endpoints(
    weight: float,
    offset: float,
    dist_start: float,
    dist_end: float,
) -> float:
    """Distance of the point at *offset* given the endpoint distances.

    This is the standard ``min(dist_start + offset, dist_end + weight - offset)``
    formula.  When both endpoint distances are exact network distances the
    result is exact; when one endpoint is unverified (infinite) the result is
    an upper bound realised through the verified endpoint.
    """
    via_start = dist_start + offset if dist_start != float("inf") else float("inf")
    via_end = dist_end + (weight - offset) if dist_end != float("inf") else float("inf")
    return min(via_start, via_end)
