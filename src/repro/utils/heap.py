"""Indexed binary min-heap with decrease-key support.

The network expansion of the Figure-2 algorithm (and every resumed search in
IMA/GMA) is a Dijkstra traversal that repeatedly *decreases* the tentative
distance of nodes already in the frontier.  Python's :mod:`heapq` does not
support decrease-key, so this module provides a small, well-tested indexed
heap.  Keys are ``float`` distances and items are hashable identifiers
(network node ids in practice).

The implementation keeps a position map from item to its slot in the array,
which makes ``decrease_key`` and membership checks O(log n) / O(1).
"""

from __future__ import annotations

from typing import Hashable, Iterator, Tuple


class IndexedMinHeap:
    """A binary min-heap keyed by float with O(log n) decrease-key.

    Items must be hashable and unique; pushing an existing item updates its
    key only if the new key is smaller (the common Dijkstra relaxation),
    unless :meth:`push` is called with ``allow_increase=True``.
    """

    __slots__ = ("_keys", "_items", "_positions")

    def __init__(self) -> None:
        self._keys: list[float] = []
        self._items: list[Hashable] = []
        self._positions: dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def __bool__(self) -> bool:
        return bool(self._keys)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._positions

    def __iter__(self) -> Iterator[Tuple[Hashable, float]]:
        """Iterate over (item, key) pairs in arbitrary (heap) order."""
        return zip(self._items, self._keys)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def key_of(self, item: Hashable) -> float:
        """Return the current key of *item*.

        Raises:
            KeyError: if *item* is not in the heap.
        """
        return self._keys[self._positions[item]]

    def peek(self) -> Tuple[Hashable, float]:
        """Return the (item, key) pair with the smallest key without removing it.

        Raises:
            IndexError: if the heap is empty.
        """
        if not self._keys:
            raise IndexError("peek from an empty heap")
        return self._items[0], self._keys[0]

    def min_key(self) -> float:
        """Return the smallest key, or ``float('inf')`` if the heap is empty."""
        if not self._keys:
            return float("inf")
        return self._keys[0]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def push(self, item: Hashable, key: float, allow_increase: bool = False) -> bool:
        """Insert *item* with *key*, or relax its key if already present.

        Args:
            item: hashable identifier.
            key: priority (smaller pops first).
            allow_increase: when True an existing item's key may also be
                increased; by default only decreases are applied, which is
                the Dijkstra relaxation semantics.

        Returns:
            True if the heap changed (inserted or key updated).
        """
        pos = self._positions.get(item)
        if pos is None:
            self._keys.append(key)
            self._items.append(item)
            self._positions[item] = len(self._keys) - 1
            self._sift_up(len(self._keys) - 1)
            return True
        current = self._keys[pos]
        if key < current:
            self._keys[pos] = key
            self._sift_up(pos)
            return True
        if key > current and allow_increase:
            self._keys[pos] = key
            self._sift_down(pos)
            return True
        return False

    def decrease_key(self, item: Hashable, key: float) -> bool:
        """Decrease the key of *item* to *key* (no-op if not smaller).

        Raises:
            KeyError: if *item* is not in the heap.
        """
        pos = self._positions[item]
        if key >= self._keys[pos]:
            return False
        self._keys[pos] = key
        self._sift_up(pos)
        return True

    def pop(self) -> Tuple[Hashable, float]:
        """Remove and return the (item, key) pair with the smallest key.

        Raises:
            IndexError: if the heap is empty.
        """
        if not self._keys:
            raise IndexError("pop from an empty heap")
        top_item = self._items[0]
        top_key = self._keys[0]
        self._remove_at(0)
        return top_item, top_key

    def remove(self, item: Hashable) -> float:
        """Remove *item* from the heap and return its key.

        Raises:
            KeyError: if *item* is not in the heap.
        """
        pos = self._positions[item]
        key = self._keys[pos]
        self._remove_at(pos)
        return key

    def discard(self, item: Hashable) -> None:
        """Remove *item* if present; do nothing otherwise."""
        if item in self._positions:
            self.remove(item)

    def clear(self) -> None:
        """Remove every item from the heap."""
        self._keys.clear()
        self._items.clear()
        self._positions.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _remove_at(self, pos: int) -> None:
        last = len(self._keys) - 1
        item = self._items[pos]
        del self._positions[item]
        if pos != last:
            self._keys[pos] = self._keys[last]
            self._items[pos] = self._items[last]
            self._positions[self._items[pos]] = pos
        self._keys.pop()
        self._items.pop()
        if pos < len(self._keys):
            self._sift_down(pos)
            self._sift_up(pos)

    def _swap(self, i: int, j: int) -> None:
        self._keys[i], self._keys[j] = self._keys[j], self._keys[i]
        self._items[i], self._items[j] = self._items[j], self._items[i]
        self._positions[self._items[i]] = i
        self._positions[self._items[j]] = j

    def _sift_up(self, pos: int) -> None:
        while pos > 0:
            parent = (pos - 1) >> 1
            if self._keys[pos] < self._keys[parent]:
                self._swap(pos, parent)
                pos = parent
            else:
                break

    def _sift_down(self, pos: int) -> None:
        size = len(self._keys)
        while True:
            left = 2 * pos + 1
            right = left + 1
            smallest = pos
            if left < size and self._keys[left] < self._keys[smallest]:
                smallest = left
            if right < size and self._keys[right] < self._keys[smallest]:
                smallest = right
            if smallest == pos:
                break
            self._swap(pos, smallest)
            pos = smallest

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def is_valid(self) -> bool:
        """Check the heap invariant and the position map (used by tests)."""
        size = len(self._keys)
        for pos in range(size):
            left = 2 * pos + 1
            right = left + 1
            if left < size and self._keys[left] < self._keys[pos]:
                return False
            if right < size and self._keys[right] < self._keys[pos]:
                return False
        if len(self._positions) != size:
            return False
        for item, pos in self._positions.items():
            if self._items[pos] != item:
                return False
        return True

    def items_sorted(self) -> list[Tuple[Hashable, float]]:
        """Return all (item, key) pairs ordered by key (non-destructive)."""
        return sorted(zip(self._items, self._keys), key=lambda pair: pair[1])


class LazyMinHeap:
    """A simpler heap based on lazy deletion, useful as a reference.

    It wraps :mod:`heapq` and skips stale entries on pop.  The expansion
    engine uses :class:`IndexedMinHeap`; this class exists mainly so tests
    can cross-check behaviour and benchmarks can compare the two designs.
    """

    __slots__ = ("_heap", "_best", "_counter")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Hashable]] = []
        self._best: dict[Hashable, float] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._best)

    def __bool__(self) -> bool:
        return bool(self._best)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._best

    def push(self, item: Hashable, key: float) -> bool:
        """Insert or relax *item*; only decreases are applied."""
        import heapq

        current = self._best.get(item)
        if current is not None and key >= current:
            return False
        self._best[item] = key
        self._counter += 1
        heapq.heappush(self._heap, (key, self._counter, item))
        return True

    def pop(self) -> Tuple[Hashable, float]:
        """Pop the smallest live entry, skipping stale ones."""
        import heapq

        while self._heap:
            key, _, item = heapq.heappop(self._heap)
            if self._best.get(item) == key:
                del self._best[item]
                return item, key
        raise IndexError("pop from an empty heap")

    def min_key(self) -> float:
        """Return the smallest live key, or infinity when empty."""
        import heapq

        while self._heap:
            key, _, item = self._heap[0]
            if self._best.get(item) == key:
                return key
            heapq.heappop(self._heap)
        return float("inf")
