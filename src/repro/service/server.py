"""Asyncio socket front-end over a durable monitoring server.

Clients connect over TCP and exchange length-prefixed pickle frames (see
:mod:`repro.service.protocol`).  Requests are ``(verb, *args)`` tuples:

==================================  ==================================================
request                             reply value (inside ``("ok", value)``)
==================================  ==================================================
``("ping",)``                       ``"pong"``
``("timestamp",)``                  next-tick timestamp
``("add_object", oid, x, y)``       snapped :class:`NetworkLocation`
``("move_object", oid, x, y)``      snapped :class:`NetworkLocation`
``("remove_object", oid)``          ``True``
``("add_query", qid, x, y, k)``     snapped :class:`NetworkLocation` (``k``: int or QuerySpec)
``("move_query", qid, x, y)``       snapped :class:`NetworkLocation`
``("remove_query", qid)``           ``True``
``("update_edge", eid, weight)``    ``True``
``("apply", payload)``              next-tick timestamp (``payload``: encode_batch bytes)
``("tick",)``                       the tick's :class:`TimestepReport`
``("results",)``                    ``{query_id: KnnResult}``
``("result", qid)``                 the query's :class:`KnnResult`
``("subscribe",)``                  ``True`` (this connection now receives deltas)
``("unsubscribe",)``                ``True``
``("checkpoint",)``                 checkpoint timestamp
``("stop",)``                       ``True`` (service checkpoints and shuts down)
==================================  ==================================================

Errors never kill the service: any :class:`~repro.exceptions.ReproError`
(or unexpected exception) raised by a request is returned to that client as
``("error", type_name, message)`` and the connection keeps serving.

After every tick the service pushes ``("delta", timestamp, changes)`` to
every subscribed connection, where *changes* maps each query whose result
changed to its new result — or to ``None`` when the query terminated this
tick — so clients can follow results watch-mode style without polling.

Ticks fire on demand (the ``tick`` request) and, when ``tick_interval`` is
set, on a wall clock as well; both paths go through the durable wrapper,
so every processed batch is event-logged before it is applied.
"""

from __future__ import annotations

import asyncio
import os
import pathlib
from typing import Any, Dict, Optional, Set, Tuple

from repro.core.events import decode_batch
from repro.exceptions import ReproError, ServiceError
from repro.service.durable import DurableMonitoringServer
from repro.service.protocol import read_frame, write_frame


def write_address_file(path, host: str, port: int) -> None:
    """Atomically publish ``"host port"`` so drivers can find a bound service."""
    path = pathlib.Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(f"{host} {port}\n", encoding="utf-8")
    os.replace(tmp, path)


class StreamingService:
    """TCP streaming front-end: clients stream updates, deltas stream back.

    Wraps a :class:`~repro.service.durable.DurableMonitoringServer`; every
    tick — client-requested or wall-clock — is write-ahead logged before it
    is applied, and its result deltas are pushed to subscribers.

    Example::

        durable = DurableMonitoringServer(server, "service-data")
        service = StreamingService(durable, port=0)
        asyncio.run(service.run())      # serves until a client sends ("stop",)
    """

    def __init__(
        self,
        durable: DurableMonitoringServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tick_interval: Optional[float] = None,
    ) -> None:
        """Configure (but do not yet bind) the service.

        Args:
            durable: the durable server that owns all monitoring state.
            host: interface to bind.
            port: TCP port; 0 picks a free one (read :attr:`bound_address`).
            tick_interval: seconds between wall-clock ticks; ``None`` means
                ticks fire only on client request.
        """
        if tick_interval is not None and tick_interval <= 0:
            raise ServiceError(
                f"tick_interval must be positive or None, got {tick_interval!r}"
            )
        self._durable = durable
        self._host = host
        self._port = port
        self._tick_interval = tick_interval
        self._subscribers: Set[asyncio.StreamWriter] = set()
        self._lock = asyncio.Lock()
        self._stop_event = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._tick_task: Optional[asyncio.Task] = None
        # Live queries as of the last completed tick.  Terminations must be
        # diffed against this, not against query_ids() sampled just before
        # the tick: remove_query() drops the query from the server's live
        # set at ingestion time, so a pre-tick sample already misses it and
        # the ("delta", t, {qid: None}) announcement would never fire.
        self._live_queries: Set[int] = set(durable.server.query_ids())
        #: ``(host, port)`` actually bound, available after :meth:`start`.
        self.bound_address: Optional[Tuple[str, int]] = None

    @property
    def durable(self) -> DurableMonitoringServer:
        """The durable server behind this service."""
        return self._durable

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket and start serving; returns (host, port)."""
        if self._server is not None:
            raise ServiceError("service is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self.bound_address = (sockname[0], sockname[1])
        if self._tick_interval is not None:
            self._tick_task = asyncio.create_task(self._tick_loop())
        return self.bound_address

    async def run(self, address_file=None) -> None:
        """Serve until a client sends ``("stop",)``, then shut down cleanly.

        With *address_file* set, writes ``"host port"`` there (atomically)
        once the socket is bound — the hand-shake the CLI and the
        fault-injection driver use to find a service on an ephemeral port.
        """
        host, port = await self.start()
        if address_file is not None:
            write_address_file(address_file, host, port)
        try:
            await self._stop_event.wait()
        finally:
            await self._shutdown()

    async def stop(self) -> None:
        """Request a graceful shutdown (checkpoint, close log, close server)."""
        self._stop_event.set()

    async def _shutdown(self) -> None:
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
            self._tick_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._subscribers):
            self._subscribers.discard(writer)
            writer.close()
        try:
            self._durable.checkpoint()
        finally:
            self._durable.close()

    # ------------------------------------------------------------------
    # ticking
    # ------------------------------------------------------------------
    async def _tick_loop(self) -> None:
        while not self._stop_event.is_set():
            await asyncio.sleep(self._tick_interval)
            try:
                await self._tick_and_broadcast()
            except ReproError:
                # A wall-clock tick can race shutdown (durable already
                # closed); the stop event ends the loop on the next check.
                if self._stop_event.is_set():
                    break
                raise

    async def _tick_and_broadcast(self):
        async with self._lock:
            live_before = self._live_queries
            report = self._durable.tick()
            self._live_queries = set(self._durable.server.query_ids())
            await self._broadcast_delta(report, live_before)
        return report

    async def _broadcast_delta(self, report, live_before) -> None:
        if not self._subscribers:
            return
        live_after = self._live_queries
        changes: Dict[int, Any] = {}
        for query_id in sorted(report.changed_queries):
            if query_id in live_after:
                changes[query_id] = self._durable.server.result_of(query_id)
        for query_id in sorted(live_before - live_after):
            changes[query_id] = None  # terminated this tick
        message = ("delta", report.timestamp, changes)
        dead = []
        for writer in list(self._subscribers):
            try:
                await write_frame(writer, message)
            except Exception:
                dead.append(writer)
        for writer in dead:
            self._subscribers.discard(writer)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        stop_requested = False
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except (EOFError, ConnectionError):
                    break
                response = await self._dispatch(request, writer)
                try:
                    await write_frame(writer, response)
                except (ConnectionError, BrokenPipeError):
                    break
                if (
                    isinstance(request, tuple)
                    and request
                    and request[0] == "stop"
                    and response[0] == "ok"
                ):
                    stop_requested = True
                    break
        finally:
            self._subscribers.discard(writer)
            writer.close()
            if stop_requested:
                self._stop_event.set()

    async def _dispatch(self, request, writer):
        try:
            if not isinstance(request, tuple) or not request:
                raise ServiceError(f"malformed request frame: {request!r}")
            verb = request[0]
            args = request[1:]
            server = self._durable.server
            if verb == "ping":
                return ("ok", "pong")
            if verb == "timestamp":
                return ("ok", server.current_timestamp)
            if verb == "subscribe":
                self._subscribers.add(writer)
                return ("ok", True)
            if verb == "unsubscribe":
                self._subscribers.discard(writer)
                return ("ok", True)
            if verb == "add_object":
                object_id, x, y = args
                return ("ok", server.add_object_at(object_id, x, y))
            if verb == "move_object":
                object_id, x, y = args
                return ("ok", server.move_object_at(object_id, x, y))
            if verb == "remove_object":
                (object_id,) = args
                server.remove_object(object_id)
                return ("ok", True)
            if verb == "add_query":
                query_id, x, y, k = args
                return ("ok", server.add_query_at(query_id, x, y, k))
            if verb == "move_query":
                query_id, x, y = args
                return ("ok", server.move_query_at(query_id, x, y))
            if verb == "remove_query":
                (query_id,) = args
                server.remove_query(query_id)
                return ("ok", True)
            if verb == "update_edge":
                edge_id, weight = args
                server.update_edge_weight(edge_id, weight)
                return ("ok", True)
            if verb == "apply":
                (payload,) = args
                batch = decode_batch(payload)
                server.apply_updates(batch)
                return ("ok", server.current_timestamp)
            if verb == "tick":
                report = await self._tick_and_broadcast()
                return ("ok", report)
            if verb == "results":
                return ("ok", server.results())
            if verb == "result":
                (query_id,) = args
                return ("ok", server.result_of(query_id))
            if verb == "checkpoint":
                async with self._lock:
                    return ("ok", self._durable.checkpoint())
            if verb == "stop":
                return ("ok", True)
            raise ServiceError(f"unknown request verb {verb!r}")
        except Exception as exc:
            # Typed repro errors and unexpected ones alike go back to the
            # client; the service itself must survive any single request.
            return ("error", type(exc).__name__, str(exc))
