"""CLI entry point: ``python -m repro.service``.

Runs a :class:`~repro.service.server.StreamingService` over a data
directory.  If the directory already holds checkpoints the service
*recovers* — newest checkpoint plus log-tail replay — and resumes exactly
where the previous process (crashed or stopped) left off; otherwise a
fresh server is built, optionally primed from a named scenario preset so
the fault-injection driver and the service agree byte-for-byte on the
initial state.

Typical use::

    python -m repro.service --data-dir /tmp/svc --port 7781
    python -m repro.service --data-dir /tmp/svc \\
        --scenario uniform-drift --seed 3 --network-edges 120 \\
        --address-file /tmp/svc/address

The address file (``"host port"``) is written atomically after the socket
binds, which is how drivers find a service started on an ephemeral port.
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib

from repro.network.builders import city_network
from repro.network.kernels import DEFAULT_KERNEL, registered_kernels
from repro.service.durable import DurableMonitoringServer, _CHECKPOINT_DIRNAME
from repro.service.faults import build_scenario_server
from repro.service.server import StreamingService


def main(argv=None) -> int:
    """Parse arguments, build or recover the durable server, and serve."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the durable streaming monitoring service.",
    )
    parser.add_argument("--data-dir", required=True, help="event log + checkpoints")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument(
        "--address-file",
        default=None,
        help="write 'host port' here once the socket is bound",
    )
    parser.add_argument("--scenario", default=None, help="prime from this preset")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--network-edges", type=int, default=120)
    parser.add_argument("--algorithm", default="IMA")
    parser.add_argument(
        "--kernel", default=DEFAULT_KERNEL, choices=registered_kernels()
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="shard across N worker processes"
    )
    parser.add_argument("--checkpoint-every", type=int, default=16)
    parser.add_argument(
        "--tick-interval",
        type=float,
        default=None,
        help="wall-clock seconds between automatic ticks (default: on demand)",
    )
    parser.add_argument(
        "--no-sync",
        action="store_true",
        help="skip per-append fsync (capture-only logs)",
    )
    args = parser.parse_args(argv)

    data_dir = pathlib.Path(args.data_dir)
    has_checkpoints = any((data_dir / _CHECKPOINT_DIRNAME).glob("ckpt-*.bin")) if (
        data_dir / _CHECKPOINT_DIRNAME
    ).is_dir() else False

    if has_checkpoints:
        durable = DurableMonitoringServer.recover(
            data_dir,
            checkpoint_every=args.checkpoint_every,
            sync=not args.no_sync,
        )
    else:
        if args.scenario is not None:
            server = build_scenario_server(
                args.scenario,
                args.seed,
                args.network_edges,
                args.algorithm,
                args.kernel,
                args.workers,
            )
        else:
            from repro.core.server import MonitoringServer
            from repro.core.sharding import ShardedMonitoringServer

            network = city_network(args.network_edges, seed=args.seed + 1)
            if args.workers is None:
                server = MonitoringServer(
                    network, algorithm=args.algorithm, kernel=args.kernel
                )
            else:
                server = ShardedMonitoringServer(
                    network,
                    algorithm=args.algorithm,
                    kernel=args.kernel,
                    workers=args.workers,
                )
        durable = DurableMonitoringServer(
            server,
            data_dir,
            checkpoint_every=args.checkpoint_every,
            sync=not args.no_sync,
        )

    service = StreamingService(
        durable,
        host=args.host,
        port=args.port,
        tick_interval=args.tick_interval,
    )
    asyncio.run(service.run(address_file=args.address_file))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
