"""CLI entry point: ``python -m repro.service.replay``.

Feeds a captured service data directory (event log + genesis checkpoint)
into the oracle-backed differential harness
(:func:`repro.testing.run_differential_log`): every logged batch is
replayed against an independent oracle and the requested monitor panel,
and any divergence is printed.  Exit code 0 means the whole captured
workload replays clean.

Typical use::

    python -m repro.service.replay /tmp/svc
    python -m repro.service.replay /tmp/svc --algorithms IMA GMA-dial --max-ticks 50
"""

from __future__ import annotations

import argparse

from repro.testing.harness import DEFAULT_ALGORITHMS, run_differential_log


def main(argv=None) -> int:
    """Replay a captured event log differentially; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.replay",
        description="Differentially replay a captured service event log.",
    )
    parser.add_argument("data_dir", help="service data directory to replay")
    parser.add_argument(
        "--algorithms",
        nargs="+",
        default=list(DEFAULT_ALGORITHMS),
        help=f"monitor panel to run (default: {' '.join(DEFAULT_ALGORITHMS)})",
    )
    parser.add_argument(
        "--max-ticks",
        type=int,
        default=None,
        help="replay at most this many logged batches",
    )
    args = parser.parse_args(argv)

    report = run_differential_log(
        args.data_dir,
        algorithms=tuple(args.algorithms),
        max_ticks=args.max_ticks,
    )
    print(
        f"replayed {report.timestamps} logged batches, "
        f"{report.checks} result checks, {len(report.mismatches)} mismatches"
    )
    if not report.ok:
        for line in report.mismatches[:20]:
            print(f"  {line}")
        if len(report.mismatches) > 20:
            print(f"  ... and {len(report.mismatches) - 20} more")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
