"""Append-only, length-prefixed binary event log with torn-tail repair.

The durability backbone of :mod:`repro.service`: every normalized
:class:`~repro.core.events.UpdateBatch` is appended (and fsynced) *before*
it is applied, so a crash at any instant loses at most updates that were
never acknowledged as ticked.

On-disk format::

    RPEVLOG1                                   # 8-byte file magic
    <u32 length> <u32 crc32(payload)> payload  # record 0
    <u32 length> <u32 crc32(payload)> payload  # record 1
    ...

All integers are little-endian.  Two failure modes are distinguished when a
log is opened or read:

* **Torn tail** — the file ends mid-record (truncated header or payload),
  or the *final* complete record fails its CRC: the classic shape of a
  crash between write and fsync.  This is expected; :class:`EventLog`
  truncates the tail on open and appends from the last valid record.
* **Mid-file corruption** — a CRC mismatch with more data after it.  That
  is not a crash artifact but real damage, and raises
  :class:`~repro.exceptions.EventLogError` instead of silently dropping
  acknowledged history.
"""

from __future__ import annotations

import os
import pathlib
import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.exceptions import EventLogError

#: First 8 bytes of every event-log file.
MAGIC = b"RPEVLOG1"

_HEADER = struct.Struct("<II")  # (payload length, crc32(payload))


@dataclass(frozen=True)
class LogRecord:
    """One decoded event-log record and where it sits in the file.

    Example::

        for record in scan_event_log("data/events.log").records:
            print(record.start, len(record.payload))
    """

    #: file offset of the record's header
    start: int
    #: file offset just past the record's payload (= next record's start)
    end: int
    #: the record's payload bytes (a :func:`~repro.core.events.encode_batch`
    #: blob in the durable service's logs)
    payload: bytes


@dataclass(frozen=True)
class LogScan:
    """Outcome of scanning an event log from disk.

    Example::

        scan = scan_event_log("data/events.log")
        if scan.torn:
            print(f"torn tail: {scan.file_size - scan.valid_end} bytes")
    """

    #: every valid record, in append order
    records: List[LogRecord]
    #: offset of the end of the last valid record (truncation point)
    valid_end: int
    #: size of the file as scanned
    file_size: int

    @property
    def torn(self) -> bool:
        """True when the file carries a torn (crash-truncated) tail."""
        return self.valid_end < self.file_size


def scan_event_log(path: Union[str, os.PathLike]) -> LogScan:
    """Read and validate every record of the log at *path*.

    Returns the valid records plus the offset where validity ends; a torn
    tail (see the module docstring) is reported, not raised.

    Raises:
        EventLogError: on a bad file magic or mid-file corruption.

    Example::

        scan = scan_event_log(log_path)
        payloads = [record.payload for record in scan.records]
    """
    path = pathlib.Path(path)
    file_size = path.stat().st_size
    records: List[LogRecord] = []
    with path.open("rb") as stream:
        magic = stream.read(len(MAGIC))
        if magic != MAGIC:
            raise EventLogError(
                f"{path}: bad event-log magic {magic!r} (expected {MAGIC!r})"
            )
        offset = len(MAGIC)
        while True:
            header = stream.read(_HEADER.size)
            if not header:
                break  # clean end of file
            if len(header) < _HEADER.size:
                break  # torn header
            length, crc = _HEADER.unpack(header)
            payload = stream.read(length)
            if len(payload) < length:
                break  # torn payload
            end = offset + _HEADER.size + length
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                if end >= file_size:
                    break  # CRC-bad final record: treat as torn
                raise EventLogError(
                    f"{path}: CRC mismatch in record at offset {offset} "
                    f"with {file_size - end} bytes following it — the log is "
                    f"corrupt beyond a torn tail"
                )
            records.append(LogRecord(start=offset, end=end, payload=payload))
            offset = end
    return LogScan(records=records, valid_end=offset, file_size=file_size)


def read_event_log(
    path: Union[str, os.PathLike], start_offset: Optional[int] = None
) -> List[bytes]:
    """The payloads of every valid record at *path*, in append order.

    With *start_offset* (a value previously reported by
    :attr:`EventLog.offset` — e.g. the ``log_offset`` stored in a
    checkpoint) only records starting at or after that offset are returned,
    which is exactly the log tail a recovery replays.  A torn tail is
    silently ignored (those records were never acknowledged); mid-file
    corruption raises.

    Raises:
        EventLogError: on a bad magic, mid-file corruption, or a
            *start_offset* that does not fall on a record boundary.

    Example::

        for payload in read_event_log("data/events.log"):
            batch = decode_batch(payload)
    """
    scan = scan_event_log(path)
    if start_offset is None or start_offset <= len(MAGIC):
        return [record.payload for record in scan.records]
    boundaries = {record.start for record in scan.records}
    boundaries.add(scan.valid_end)
    if start_offset not in boundaries:
        raise EventLogError(
            f"{path}: start offset {start_offset} is not a record boundary"
        )
    return [record.payload for record in scan.records if record.start >= start_offset]


class EventLog:
    """Append handle over one event-log file (write-ahead discipline).

    Opening repairs a torn tail (truncating to the last valid record) and
    positions the write cursor there; a missing file is created with the
    format magic.  :meth:`append` frames the payload, writes it, and — with
    ``sync=True``, the default — fsyncs before returning, so a returned
    offset means the record survives power loss.

    Example::

        with EventLog("data/events.log") as log:
            offset = log.append(encode_batch(batch))
        assert read_event_log("data/events.log")[-1] == encode_batch(batch)
    """

    def __init__(self, path: Union[str, os.PathLike], sync: bool = True) -> None:
        """Open (creating or repairing as needed) the log at *path*.

        Args:
            path: the log file; its parent directory must exist.
            sync: fsync after every append (durable but slower).  Turning
                it off makes a crash able to lose acknowledged records —
                only do so when the log is a capture, not a WAL.
        """
        self._path = pathlib.Path(path)
        self._sync = sync
        self._file = None
        exists = self._path.exists() and self._path.stat().st_size > 0
        if not exists:
            with self._path.open("wb") as stream:
                stream.write(MAGIC)
                stream.flush()
                os.fsync(stream.fileno())
            self._offset = len(MAGIC)
        else:
            scan = scan_event_log(self._path)
            if scan.torn:
                with self._path.open("r+b") as stream:
                    stream.truncate(scan.valid_end)
                    stream.flush()
                    os.fsync(stream.fileno())
            self._offset = scan.valid_end
        self._file = self._path.open("r+b")
        self._file.seek(self._offset)

    @property
    def path(self) -> pathlib.Path:
        """The log file's path."""
        return self._path

    @property
    def offset(self) -> int:
        """File offset just past the last appended record.

        This is the value a checkpoint stores as ``log_offset``: replaying
        :func:`read_event_log` from it yields exactly the records appended
        after the checkpoint.
        """
        return self._offset

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._file is None

    def _ensure_open(self) -> None:
        if self._file is None:
            raise EventLogError(f"{self._path}: event log is closed")

    def append(self, payload: bytes) -> int:
        """Append one record; returns the offset just past it.

        With ``sync=True`` the record is fsynced before the method returns
        — the write-ahead guarantee callers apply their batch under.
        """
        self._ensure_open()
        record = _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload
        self._file.write(record)
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())
        self._offset += len(record)
        return self._offset

    def sync(self) -> None:
        """Flush and fsync any buffered appends (no-op when ``sync=True``)."""
        self._ensure_open()
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Flush, fsync and close the file (idempotent)."""
        if self._file is not None:
            try:
                self._file.flush()
                os.fsync(self._file.fileno())
            finally:
                self._file.close()
                self._file = None

    def __enter__(self) -> "EventLog":
        """Enter a context that guarantees :meth:`close` on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the log when the ``with`` block ends."""
        self.close()
