"""Blocking-socket client for the streaming service.

:class:`ServiceClient` speaks the frame protocol of
:mod:`repro.service.protocol` over one TCP connection.  Requests are
synchronous; pushed ``("delta", ...)`` frames that arrive while waiting
for a reply are queued and retrieved with :meth:`ServiceClient.poll_delta`
— so a subscribed client can interleave updates, ticks, and delta
consumption on a single connection.
"""

from __future__ import annotations

import collections
import socket
from typing import Any, Dict, Optional, Tuple

from repro.core.events import UpdateBatch, encode_batch
from repro.exceptions import ServiceError
from repro.service.protocol import recv_frame, send_frame


class ServiceClient:
    """Synchronous client connection to a :class:`StreamingService`.

    Error replies are re-raised locally as :class:`ServiceError` carrying
    the server-side exception type and message.

    Example::

        client = ServiceClient(host, port)
        client.add_object(1, 120.0, 45.0)
        client.add_query(100, 80.0, 60.0, k=4)
        report = client.tick()
        print(client.results()[100].neighbors)
        client.close()
    """

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0) -> None:
        """Connect to the service at ``host:port``.

        Args:
            host: service host.
            port: service port.
            timeout: socket timeout in seconds for every blocking operation
                (``None`` waits forever).
        """
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._deltas: "collections.deque" = collections.deque()
        self._closed = False

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def request(self, *request: Any) -> Any:
        """Send one ``(verb, *args)`` request and return its ``ok`` value.

        Delta frames that arrive before the reply are queued for
        :meth:`poll_delta` rather than dropped.
        """
        if self._closed:
            raise ServiceError("client connection is closed")
        send_frame(self._sock, tuple(request))
        while True:
            message = recv_frame(self._sock)
            if isinstance(message, tuple) and message and message[0] == "delta":
                self._deltas.append((message[1], message[2]))
                continue
            if not isinstance(message, tuple) or not message:
                raise ServiceError(f"malformed reply frame: {message!r}")
            if message[0] == "ok":
                return message[1]
            if message[0] == "error":
                raise ServiceError(f"{message[1]}: {message[2]}")
            raise ServiceError(f"unexpected reply frame: {message!r}")

    def poll_delta(
        self, timeout: Optional[float] = 0.0
    ) -> Optional[Tuple[int, Dict[int, Any]]]:
        """Next queued ``(timestamp, changes)`` delta, or ``None`` on timeout.

        With the default ``timeout=0.0`` only already-queued deltas are
        returned; a positive timeout waits up to that long for one to
        arrive on the socket.  Requires a prior :meth:`subscribe`.
        """
        if self._deltas:
            return self._deltas.popleft()
        if timeout == 0.0:
            return None
        previous = self._sock.gettimeout()
        self._sock.settimeout(timeout)
        try:
            message = recv_frame(self._sock)
        except (socket.timeout, TimeoutError):
            return None
        finally:
            self._sock.settimeout(previous)
        if isinstance(message, tuple) and message and message[0] == "delta":
            return (message[1], message[2])
        raise ServiceError(f"expected a delta frame, got {message!r}")

    # ------------------------------------------------------------------
    # request vocabulary
    # ------------------------------------------------------------------
    def ping(self) -> str:
        """Liveness check; returns ``"pong"``."""
        return self.request("ping")

    def timestamp(self) -> int:
        """The service's next-tick timestamp."""
        return self.request("timestamp")

    def add_object(self, object_id: int, x: float, y: float):
        """Stream an object appearance; returns the snapped location."""
        return self.request("add_object", object_id, x, y)

    def move_object(self, object_id: int, x: float, y: float):
        """Stream an object movement; returns the snapped location."""
        return self.request("move_object", object_id, x, y)

    def remove_object(self, object_id: int) -> bool:
        """Stream an object disappearance."""
        return self.request("remove_object", object_id)

    def add_query(self, query_id: int, x: float, y: float, k) -> Any:
        """Install a continuous query (``k``: int or QuerySpec)."""
        return self.request("add_query", query_id, x, y, k)

    def move_query(self, query_id: int, x: float, y: float):
        """Stream a query movement; returns the snapped location."""
        return self.request("move_query", query_id, x, y)

    def remove_query(self, query_id: int) -> bool:
        """Terminate a continuous query."""
        return self.request("remove_query", query_id)

    def update_edge(self, edge_id: int, weight: float) -> bool:
        """Stream an edge-weight change."""
        return self.request("update_edge", edge_id, weight)

    def apply(self, batch: UpdateBatch) -> int:
        """Stream a whole :class:`UpdateBatch` in one request."""
        return self.request("apply", encode_batch(batch))

    def tick(self):
        """Fire one tick; returns the :class:`TimestepReport`."""
        return self.request("tick")

    def results(self) -> Dict[int, Any]:
        """Current results of every query."""
        return self.request("results")

    def result(self, query_id: int) -> Any:
        """Current result of one query."""
        return self.request("result", query_id)

    def subscribe(self) -> bool:
        """Start receiving ``("delta", ...)`` pushes on this connection."""
        return self.request("subscribe")

    def unsubscribe(self) -> bool:
        """Stop receiving delta pushes."""
        return self.request("unsubscribe")

    def checkpoint(self) -> int:
        """Force a checkpoint; returns its timestamp."""
        return self.request("checkpoint")

    def stop(self) -> bool:
        """Ask the service to checkpoint and shut down."""
        return self.request("stop")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        """Enter a context that guarantees :meth:`close` on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the client when the ``with`` block ends."""
        self.close()
