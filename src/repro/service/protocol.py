"""Wire protocol of the streaming service: length-prefixed pickle frames.

Every message — request, response, or pushed delta — travels as one frame::

    <u32 length> payload

where the payload is a pickled tuple.  Requests are ``(verb, *args)``
tuples; responses are ``("ok", value)`` or ``("error", type_name, text)``;
the server additionally pushes ``("delta", timestamp, changes)`` frames to
subscribed connections after every tick.

Both an asyncio flavor (used by :class:`~repro.service.server.StreamingService`)
and a blocking-socket flavor (used by :class:`~repro.service.client.ServiceClient`)
are provided over the same framing.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import struct
from typing import Any

from repro.exceptions import ServiceError

_LENGTH = struct.Struct("<I")

#: Upper bound on a single frame's payload (64 MiB) — a sanity check that
#: turns a desynchronized or hostile stream into a typed error instead of
#: an attempt to allocate garbage lengths.
MAX_FRAME = 64 * 1024 * 1024


def encode_frame(message: Any) -> bytes:
    """Serialize one message to its on-wire frame (length prefix + pickle)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise ServiceError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Any:
    """Inverse of the payload half of :func:`encode_frame`."""
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise ServiceError(f"cannot decode protocol frame: {exc}") from exc


async def read_frame(reader: asyncio.StreamReader) -> Any:
    """Read one frame from an asyncio stream; raises EOFError on clean close."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        raise EOFError("connection closed") from exc
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME:
        raise ServiceError(f"incoming frame of {length} bytes exceeds MAX_FRAME")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise EOFError("connection closed mid-frame") from exc
    return decode_payload(payload)


async def write_frame(writer: asyncio.StreamWriter, message: Any) -> None:
    """Write one frame to an asyncio stream and drain the transport."""
    writer.write(encode_frame(message))
    await writer.drain()


def _recv_exactly(sock: socket.socket, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError("connection closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Any:
    """Blocking-socket twin of :func:`read_frame`."""
    header = _recv_exactly(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME:
        raise ServiceError(f"incoming frame of {length} bytes exceeds MAX_FRAME")
    return decode_payload(_recv_exactly(sock, length))


def send_frame(sock: socket.socket, message: Any) -> None:
    """Blocking-socket twin of :func:`write_frame`."""
    sock.sendall(encode_frame(message))
