"""Durable streaming service over the monitoring server.

An always-on front-end for the paper's monitoring engine: clients stream
object/query/edge updates over a socket API
(:class:`~repro.service.server.StreamingService` /
:class:`~repro.service.client.ServiceClient`), ticks fire on demand or on a
wall clock, and result deltas push to subscribers watch-mode style.

Durability comes from composition
(:class:`~repro.service.durable.DurableMonitoringServer`): every normalized
update batch is appended to a length-prefixed, CRC-framed event log
(:class:`~repro.service.eventlog.EventLog`) *before* it is applied, and
periodic checkpoints let a crashed service restart and replay the log tail
to the exact pre-crash state — byte-identical to an uninterrupted run,
which :mod:`repro.service.faults` verifies by actually SIGKILLing the
process.  The log doubles as a workload capture that
``python -m repro.service.replay`` feeds back through the differential
oracle harness.
"""

from repro.service.client import ServiceClient
from repro.service.durable import (
    DurableMonitoringServer,
    InitialState,
    load_initial_state,
)
from repro.service.eventlog import EventLog, read_event_log, scan_event_log
from repro.service.faults import (
    FaultInjectionReport,
    build_scenario_server,
    pick_kill_tick,
    run_fault_injection,
)
from repro.service.server import StreamingService

__all__ = [
    "DurableMonitoringServer",
    "EventLog",
    "FaultInjectionReport",
    "InitialState",
    "ServiceClient",
    "StreamingService",
    "build_scenario_server",
    "load_initial_state",
    "pick_kill_tick",
    "read_event_log",
    "run_fault_injection",
    "scan_event_log",
]
