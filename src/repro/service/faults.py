"""Fault injection for the durable service: kill -9, restart, compare.

:func:`run_fault_injection` launches the service CLI as a subprocess,
drives it through a scenario's update batches over the socket protocol,
SIGKILLs it at a chosen tick, restarts it from its data directory
(checkpoint + log-tail replay), reconciles, finishes the scenario, and
compares the final results *exactly* against a local uninterrupted
reference server fed the identical batches.

Two deterministic kill modes cover both sides of the write-ahead boundary:

* ``"after-log"`` — the service process SIGKILLs *itself* right after
  appending the tick's batch to the event log and before applying it (the
  :data:`~repro.service.durable.KILL_AT_ENV` hook).  The tick is durable:
  the restarted service must come back at timestamp ``t + 1`` with the
  tick's effects applied by replay.
* ``"before-tick"`` — the *driver* SIGKILLs the service after streaming
  the batch but before requesting the tick.  The ingested batch was never
  logged, so by the durability contract it is lost: the restarted service
  must come back at timestamp ``t`` and the driver re-sends the batch.

Either way the final results must be byte-identical to the uninterrupted
run — the property the CI fault-injection job asserts over rotating seeds.
"""

from __future__ import annotations

import os
import pathlib
import random
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import repro
from repro.core.events import apply_batch
from repro.exceptions import RecoveryError, ServiceError
from repro.network.builders import city_network
from repro.network.edge_table import EdgeTable
from repro.network.kernels import DEFAULT_KERNEL
from repro.service.client import ServiceClient
from repro.service.durable import KILL_AT_ENV
from repro.testing.scenarios import ScenarioEngine, resolve_scenario

#: Kill modes understood by :func:`run_fault_injection`.
KILL_MODES = ("after-log", "before-tick")


def build_scenario_server(
    scenario: str,
    seed: int,
    network_edges: int,
    algorithm: str,
    kernel: str,
    workers: Optional[int],
):
    """Build a fresh monitoring server primed from a scenario preset.

    Mirrors the differential harness's scenario-server construction (same
    network seed, same initial objects and queries), so a driver holding
    the same ``(scenario, seed, network_edges)`` triple reproduces the
    service's exact starting state locally.
    """
    from repro.core.server import MonitoringServer
    from repro.core.sharding import ShardedMonitoringServer

    spec = resolve_scenario(scenario)
    network = city_network(network_edges, seed=seed + 1)
    engine = ScenarioEngine(network, spec, seed=seed)
    replica = network.copy()
    # Unlike the offline harness, the service exposes the coordinate-based
    # ingestion API (add_object_at & co.), which needs the snap index.
    edge_table = EdgeTable(replica, build_spatial_index=True)
    for object_id, location in engine.initial_objects().items():
        edge_table.insert_object(object_id, location)
    if workers is None:
        server = MonitoringServer(
            replica, algorithm=algorithm, edge_table=edge_table, kernel=kernel
        )
    else:
        server = ShardedMonitoringServer(
            replica,
            algorithm=algorithm,
            edge_table=edge_table,
            kernel=kernel,
            workers=workers,
        )
    for query_id, (location, k) in engine.initial_queries().items():
        server.add_query(query_id, location, k)
    return server


@dataclass
class FaultInjectionReport:
    """Outcome of one kill/restart/compare round.

    Example::

        report = run_fault_injection(seed=3, kill_mode="after-log")
        assert report.ok, report.failure_message()
    """

    scenario: str
    seed: int
    ticks: int
    kill_mode: str
    kill_at: int
    #: True once the service process was actually killed and restarted
    killed: bool = False
    #: service timestamp observed right after the restart
    recovered_timestamp: Optional[int] = None
    #: service timestamp after the full scenario
    final_timestamp: Optional[int] = None
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the recovered run matched the uninterrupted one exactly."""
        return self.killed and not self.mismatches

    def failure_message(self) -> str:
        """Human-readable summary of every recorded mismatch."""
        head = (
            f"fault injection {self.scenario!r} seed={self.seed} "
            f"mode={self.kill_mode} kill_at={self.kill_at}: "
        )
        if not self.killed:
            return head + "the service was never killed"
        return head + "; ".join(self.mismatches) if self.mismatches else head + "ok"


def pick_kill_tick(seed: int, ticks: int) -> int:
    """Deterministic pseudo-random kill tick for *seed* (used by CI rotation).

    Example::

        kill_at = pick_kill_tick(seed=7, ticks=12)
        assert 0 <= kill_at < 12
    """
    return random.Random(seed ^ 0x5EED).randrange(ticks)


def _wait_for_address(
    proc: subprocess.Popen, address_file: pathlib.Path, timeout: float
) -> Tuple[str, int]:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise ServiceError(
                f"service process exited with {proc.returncode} before binding"
            )
        if address_file.exists():
            text = address_file.read_text(encoding="utf-8").strip()
            if text:
                host, port = text.split()
                return host, int(port)
        time.sleep(0.05)
    raise ServiceError(f"service did not publish {address_file} within {timeout}s")


def run_fault_injection(
    scenario: str = "uniform-drift",
    seed: int = 0,
    ticks: int = 8,
    network_edges: int = 120,
    algorithm: str = "IMA",
    kernel: str = DEFAULT_KERNEL,
    workers: Optional[int] = None,
    kill_mode: str = "after-log",
    kill_at: Optional[int] = None,
    data_dir=None,
    checkpoint_every: int = 3,
    startup_timeout: float = 60.0,
) -> FaultInjectionReport:
    """Kill the service at tick *kill_at*, restart it, and verify recovery.

    Drives a subprocess service and a local uninterrupted reference server
    through the identical scenario batch stream; after the kill/restart the
    final ``results()`` of both must be *exactly* equal (same neighbor ids,
    bit-identical distances) and their clocks must agree.

    Args:
        scenario: scenario preset both sides are primed from.
        seed: scenario seed (also rotates the default kill tick).
        ticks: how many timestamps to run.
        network_edges: size of the generated road network.
        algorithm / kernel / workers: monitoring server configuration.
        kill_mode: one of :data:`KILL_MODES` (see the module docstring).
        kill_at: tick to kill at; default picks one from *seed*.
        data_dir: service data directory; default is a fresh temporary one,
            removed when the run finishes.
        checkpoint_every: the service's automatic checkpoint cadence (small
            values exercise checkpoint+tail recovery; the genesis
            checkpoint covers the rest).
        startup_timeout: seconds to wait for the service socket.

    Example::

        report = run_fault_injection(seed=1, ticks=6, kill_mode="before-tick")
        assert report.ok, report.failure_message()
    """
    if kill_mode not in KILL_MODES:
        raise ServiceError(f"unknown kill_mode {kill_mode!r}; use one of {KILL_MODES}")
    if kill_at is None:
        kill_at = pick_kill_tick(seed, ticks)
    if not 0 <= kill_at < ticks:
        raise ServiceError(f"kill_at {kill_at} outside the run's 0..{ticks - 1}")

    report = FaultInjectionReport(
        scenario=scenario, seed=seed, ticks=ticks, kill_mode=kill_mode, kill_at=kill_at
    )

    own_dir = data_dir is None
    data_path = pathlib.Path(
        tempfile.mkdtemp(prefix="repro-faults-") if own_dir else data_dir
    )
    address_file = data_path / "address"
    console = data_path / "service-console.log"

    src_dir = pathlib.Path(repro.__file__).resolve().parents[1]
    base_env = dict(os.environ)
    base_env["PYTHONPATH"] = str(src_dir) + (
        os.pathsep + base_env["PYTHONPATH"] if base_env.get("PYTHONPATH") else ""
    )
    base_env.pop(KILL_AT_ENV, None)

    command = [
        sys.executable,
        "-m",
        "repro.service",
        "--data-dir",
        str(data_path),
        "--address-file",
        str(address_file),
        "--checkpoint-every",
        str(checkpoint_every),
        "--scenario",
        scenario,
        "--seed",
        str(seed),
        "--network-edges",
        str(network_edges),
        "--algorithm",
        algorithm,
        "--kernel",
        kernel,
    ]
    if workers is not None:
        command += ["--workers", str(workers)]

    def launch(extra_env) -> Tuple[subprocess.Popen, Tuple[str, int]]:
        address_file.unlink(missing_ok=True)
        env = dict(base_env)
        env.update(extra_env)
        with console.open("ab") as sink:
            proc = subprocess.Popen(command, stdout=sink, stderr=sink, env=env)
        return proc, _wait_for_address(proc, address_file, startup_timeout)

    # The driver's private copy of the scenario world: the engine mutates
    # and reads this network/edge table, exactly as the harness does.
    spec = resolve_scenario(scenario)
    network = city_network(network_edges, seed=seed + 1)
    engine = ScenarioEngine(network, spec, seed=seed)
    edge_table = EdgeTable(network, build_spatial_index=False)
    for object_id, location in engine.initial_objects().items():
        edge_table.insert_object(object_id, location)

    reference = build_scenario_server(
        scenario, seed, network_edges, algorithm, kernel, workers
    )

    first_env = {KILL_AT_ENV: str(kill_at)} if kill_mode == "after-log" else {}
    proc, (host, port) = launch(first_env)
    client = ServiceClient(host, port, timeout=startup_timeout)
    try:
        for batch in engine.batches(timestamps=ticks):
            timestamp = batch.timestamp
            if kill_mode == "before-tick" and timestamp == kill_at and not report.killed:
                # Stream the batch, then murder the process before it ticks:
                # the ingested updates were never logged and must be lost.
                client.apply(batch)
                proc.kill()
                proc.wait(timeout=30)
                report.killed = True
                client.close()
                proc, (host, port) = launch({})
                client = ServiceClient(host, port, timeout=startup_timeout)
                report.recovered_timestamp = client.timestamp()
                if report.recovered_timestamp != timestamp:
                    raise RecoveryError(
                        f"before-tick restart came back at timestamp "
                        f"{report.recovered_timestamp}, expected {timestamp}"
                    )
                client.apply(batch)  # re-send the lost batch
                client.tick()
            elif kill_mode == "after-log" and timestamp == kill_at and not report.killed:
                client.apply(batch)
                try:
                    # The service self-SIGKILLs after the log append, so
                    # this request never gets its reply.
                    client.tick()
                except (ServiceError, EOFError, ConnectionError, OSError):
                    pass
                proc.wait(timeout=30)
                report.killed = True
                client.close()
                proc, (host, port) = launch({})
                client = ServiceClient(host, port, timeout=startup_timeout)
                report.recovered_timestamp = client.timestamp()
                if report.recovered_timestamp == timestamp + 1:
                    pass  # the logged tick was replayed — write-ahead held
                elif report.recovered_timestamp == timestamp:
                    client.apply(batch)
                    client.tick()
                else:
                    raise RecoveryError(
                        f"after-log restart came back at timestamp "
                        f"{report.recovered_timestamp}, expected "
                        f"{timestamp} or {timestamp + 1}"
                    )
            else:
                client.apply(batch)
                client.tick()
            # The uninterrupted reference consumes the identical batch.
            reference.apply_updates(batch)
            reference.tick()
            apply_batch(network, edge_table, batch.normalized())

        service_results = client.results()
        reference_results = reference.results()
        report.final_timestamp = client.timestamp()
        if report.final_timestamp != reference.current_timestamp:
            report.mismatches.append(
                f"final timestamp {report.final_timestamp} != reference "
                f"{reference.current_timestamp}"
            )
        if set(service_results) != set(reference_results):
            report.mismatches.append(
                f"live query sets differ: service {sorted(service_results)} "
                f"vs reference {sorted(reference_results)}"
            )
        else:
            for query_id in sorted(reference_results):
                if service_results[query_id] != reference_results[query_id]:
                    report.mismatches.append(
                        f"query {query_id}: service "
                        f"{service_results[query_id]} != reference "
                        f"{reference_results[query_id]}"
                    )
        client.stop()
        proc.wait(timeout=30)
    finally:
        client.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        reference.close()
        if own_dir:
            shutil.rmtree(data_path, ignore_errors=True)
    return report
