"""Durable wrapper around a monitoring server: write-ahead log + checkpoints.

:class:`DurableMonitoringServer` composes any
:class:`~repro.core.server.MonitoringServer` (in-process or sharded) with an
:class:`~repro.service.eventlog.EventLog` and a checkpoint directory:

* every :meth:`~DurableMonitoringServer.tick` detaches the pending batch,
  appends its normalized encoding to the fsynced log, and only then applies
  it — the write-ahead discipline;
* every ``checkpoint_every`` ticks (and on demand) the complete server
  state is pickled to an atomically-written checkpoint file that records
  the log offset it corresponds to;
* :meth:`~DurableMonitoringServer.recover` restores the newest valid
  checkpoint and replays the log tail from its recorded offset, arriving at
  results byte-identical to an uninterrupted run.

Durability boundary: updates that were *ingested but never ticked* are not
durable (they live only in the pending buffer) unless a checkpoint happened
to capture them.  Recovery therefore discards any restored pending buffer
whenever logged batches remain to replay — the first replayed batch is a
superset of that buffer, so nothing acknowledged as *ticked* is ever lost
or double-applied.

Checkpoint files live under ``<data_dir>/checkpoints/ckpt-<timestamp>.bin``
and frame their pickled payload with a magic and CRC so a partially written
file (crash mid-checkpoint) is detected and skipped in favor of the
previous one.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import signal
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.base import TimestepReport
from repro.core.events import decode_batch, encode_batch
from repro.core.server import MonitoringServer, restore_server
from repro.exceptions import RecoveryError, ServiceError
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.service.eventlog import EventLog, read_event_log

#: First 8 bytes of every checkpoint file.
CHECKPOINT_MAGIC = b"RPCKPT01"

_CKPT_HEADER = struct.Struct("<II")  # (payload length, crc32(payload))

#: Environment variable for deterministic crash injection: when set to an
#: integer T, the process SIGKILLs itself immediately after logging the
#: batch of timestamp T and *before* applying it — the worst-possible crash
#: point recovery must handle.
KILL_AT_ENV = "REPRO_SERVICE_KILL_AT"

_LOG_FILENAME = "events.log"
_CHECKPOINT_DIRNAME = "checkpoints"


def _checkpoint_path(directory: pathlib.Path, timestamp: int) -> pathlib.Path:
    return directory / f"ckpt-{timestamp:010d}.bin"


def _list_checkpoints(directory: pathlib.Path) -> List[pathlib.Path]:
    if not directory.is_dir():
        return []
    return sorted(directory.glob("ckpt-*.bin"))


def _write_checkpoint(
    directory: pathlib.Path, timestamp: int, log_offset: int, state: bytes
) -> pathlib.Path:
    """Atomically write one framed checkpoint file and fsync it into place."""
    payload = pickle.dumps(
        {"timestamp": timestamp, "log_offset": log_offset, "state": state},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    frame = (
        CHECKPOINT_MAGIC
        + _CKPT_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        + payload
    )
    final = _checkpoint_path(directory, timestamp)
    tmp = final.with_suffix(".tmp")
    with tmp.open("wb") as stream:
        stream.write(frame)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, final)
    # fsync the directory so the rename itself survives power loss
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return final


def _read_checkpoint(path: pathlib.Path) -> Dict[str, object]:
    """Decode one checkpoint file; raises RecoveryError on any damage."""
    data = path.read_bytes()
    if data[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        raise RecoveryError(f"{path}: bad checkpoint magic")
    body = data[len(CHECKPOINT_MAGIC) :]
    if len(body) < _CKPT_HEADER.size:
        raise RecoveryError(f"{path}: truncated checkpoint header")
    length, crc = _CKPT_HEADER.unpack(body[: _CKPT_HEADER.size])
    payload = body[_CKPT_HEADER.size : _CKPT_HEADER.size + length]
    if len(payload) < length:
        raise RecoveryError(f"{path}: truncated checkpoint payload")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise RecoveryError(f"{path}: checkpoint CRC mismatch")
    try:
        record = pickle.loads(payload)
    except Exception as exc:
        raise RecoveryError(f"{path}: cannot decode checkpoint: {exc}") from exc
    for key in ("timestamp", "log_offset", "state"):
        if not isinstance(record, dict) or key not in record:
            raise RecoveryError(f"{path}: checkpoint is missing field {key!r}")
    return record


def _maybe_self_kill(timestamp: int) -> None:
    """Crash-injection hook: SIGKILL ourselves at the configured timestamp."""
    target = os.environ.get(KILL_AT_ENV)
    if target is not None and timestamp == int(target):
        os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class InitialState:
    """The pre-run state captured by a data directory's genesis checkpoint.

    What a differential replay needs to rebuild independent monitors that
    then consume the logged batches: the network and edge table exactly as
    they were before the first logged tick, plus the queries that were
    already *registered* (ticked at least once) at that point — queries
    installed through the log replay themselves arrive as logged
    installation updates.

    Example::

        initial = load_initial_state("service-data")
        print(len(initial.queries), initial.timestamp)
    """

    #: the road network before the first logged tick
    network: RoadNetwork
    #: the edge table (object positions included) before the first logged tick
    edge_table: EdgeTable
    #: query id -> (location, QuerySpec) for queries already registered
    queries: Dict[int, Tuple[NetworkLocation, object]]
    #: the genesis checkpoint's timestamp (the first logged batch's timestamp)
    timestamp: int


def load_initial_state(data_dir: Union[str, os.PathLike]) -> InitialState:
    """Read the genesis (earliest) checkpoint of *data_dir* without respawning.

    Unlike :func:`~repro.core.server.restore_server` this never spawns
    worker processes for a sharded snapshot — it only extracts the network,
    edge table, and registered queries, which is all a differential replay
    (:func:`repro.testing.run_differential_log`) needs to rebuild reference
    monitors from scratch.

    Raises:
        RecoveryError: if the directory holds no readable checkpoint or the
            genesis checkpoint has an unknown snapshot kind.

    Example::

        initial = load_initial_state("service-data")
        report = run_differential_log("service-data")
    """
    directory = pathlib.Path(data_dir) / _CHECKPOINT_DIRNAME
    paths = _list_checkpoints(directory)
    if not paths:
        raise RecoveryError(f"{data_dir}: no checkpoints found")
    record = _read_checkpoint(paths[0])  # lowest timestamp = genesis
    try:
        state = pickle.loads(record["state"])
    except Exception as exc:
        raise RecoveryError(f"{paths[0]}: cannot decode snapshot: {exc}") from exc
    if not isinstance(state, dict):
        raise RecoveryError(f"{paths[0]}: snapshot is not a state mapping")
    kind = state.get("kind")
    queries: Dict[int, Tuple[NetworkLocation, object]] = {}
    if kind == "in-process":
        server = state["server"]
        monitor = server.monitor
        for query_id in sorted(monitor.query_ids()):
            queries[query_id] = (
                monitor.query_location(query_id),
                monitor.query_spec(query_id),
            )
        return InitialState(
            network=server.network,
            edge_table=server.edge_table,
            queries=queries,
            timestamp=int(record["timestamp"]),
        )
    if kind == "sharded":
        if "query_locations" in state and "query_specs" in state:
            # The coordinator-level maps cover every registered query.  The
            # shard blobs alone would miss graph-partitioned boundary
            # queries, which are evaluated by the coordinator and therefore
            # registered in no shard's monitor.
            for query_id, location in state["query_locations"].items():
                queries[query_id] = (location, state["query_specs"][query_id])
        else:  # pragma: no cover - snapshots predating coordinator maps
            for blob in state["shard_blobs"]:
                monitor = pickle.loads(blob)
                for query_id in monitor.query_ids():
                    queries[query_id] = (
                        monitor.query_location(query_id),
                        monitor.query_spec(query_id),
                    )
        return InitialState(
            network=state["network"],
            edge_table=state["edge_table"],
            queries=queries,
            timestamp=int(record["timestamp"]),
        )
    raise RecoveryError(f"{paths[0]}: unknown snapshot kind {kind!r}")


class DurableMonitoringServer:
    """A monitoring server with a write-ahead event log and crash recovery.

    Wraps any :class:`~repro.core.server.MonitoringServer` (pass
    ``workers=N`` to the wrapped server for a sharded fleet).  Ingestion
    still goes through the wrapped server (reachable as :attr:`server`);
    only :meth:`tick` must go through this wrapper so every processed batch
    hits the log before it is applied.

    Example::

        server = MonitoringServer(network, edge_table, algorithm="IMA")
        durable = DurableMonitoringServer(server, "service-data")
        server.add_object(1, location)
        durable.tick()                      # logged, then applied
        durable.close()
        recovered = DurableMonitoringServer.recover("service-data")
        assert recovered.results() == {}
    """

    def __init__(
        self,
        server: MonitoringServer,
        data_dir: Union[str, os.PathLike],
        *,
        checkpoint_every: Optional[int] = 16,
        sync: bool = True,
        keep_checkpoints: int = 4,
    ) -> None:
        """Start a *fresh* durable server over an empty-or-new data directory.

        Writes the genesis checkpoint immediately, so a crash before the
        first tick already recovers to the initial state.  Refuses a data
        directory that has checkpoints: that directory belongs to an
        earlier run and must go through :meth:`recover` (or be deleted) —
        silently re-initializing it would fork its history.

        Args:
            server: the wrapped (in-process or sharded) monitoring server.
            data_dir: directory for the event log and checkpoints
                (created if missing).
            checkpoint_every: write a checkpoint automatically every this
                many ticks; ``None`` disables automatic checkpoints.
            sync: fsync the event log on every append (the write-ahead
                guarantee); pass False only for capture-only logs.
            keep_checkpoints: how many of the newest checkpoints to retain
                when pruning (the genesis checkpoint is always kept — it
                anchors full-log replays).
        """
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ServiceError(
                f"checkpoint_every must be a positive integer or None, "
                f"got {checkpoint_every!r}"
            )
        if keep_checkpoints < 1:
            raise ServiceError(
                f"keep_checkpoints must be at least 1, got {keep_checkpoints!r}"
            )
        self._server = server
        self._data_dir = pathlib.Path(data_dir)
        self._checkpoint_dir = self._data_dir / _CHECKPOINT_DIRNAME
        self._checkpoint_every = checkpoint_every
        self._keep_checkpoints = keep_checkpoints
        self._ticks_since_checkpoint = 0
        self._recovered_ticks = 0
        self._closed = False
        existing = _list_checkpoints(self._checkpoint_dir)
        if existing:
            raise ServiceError(
                f"{self._data_dir}: data directory already holds "
                f"{len(existing)} checkpoint(s); use "
                f"DurableMonitoringServer.recover() to resume it"
            )
        self._data_dir.mkdir(parents=True, exist_ok=True)
        self._checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._log = EventLog(self._data_dir / _LOG_FILENAME, sync=sync)
        self.checkpoint()  # genesis

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def server(self) -> MonitoringServer:
        """The wrapped monitoring server (use it for ingestion and queries)."""
        return self._server

    @property
    def data_dir(self) -> pathlib.Path:
        """The data directory holding the event log and checkpoints."""
        return self._data_dir

    @property
    def log(self) -> EventLog:
        """The underlying write-ahead event log."""
        return self._log

    @property
    def current_timestamp(self) -> int:
        """The wrapped server's next-tick timestamp."""
        return self._server.current_timestamp

    @property
    def recovered_ticks(self) -> int:
        """How many log-tail batches :meth:`recover` replayed (0 when fresh)."""
        return self._recovered_ticks

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def tick(self) -> TimestepReport:
        """Log the pending batch durably, then apply it (one timestamp).

        The write-ahead step: the normalized batch is appended (and, with
        ``sync=True``, fsynced) *before* the monitor sees it, so a crash at
        any later instant replays this tick from the log.  Writes an
        automatic checkpoint every ``checkpoint_every`` ticks.
        """
        batch = self._server.take_pending_batch()
        self._log.append(encode_batch(batch.normalized()))
        _maybe_self_kill(batch.timestamp)
        report = self._server.apply_taken_batch(batch)
        self._ticks_since_checkpoint += 1
        if (
            self._checkpoint_every is not None
            and self._ticks_since_checkpoint >= self._checkpoint_every
        ):
            self.checkpoint()
        return report

    def results(self) -> Dict[int, object]:
        """Current results of every query (after the last tick)."""
        return self._server.results()

    def result_of(self, query_id: int) -> object:
        """Current result of one query (after the last tick)."""
        return self._server.result_of(query_id)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Write a checkpoint of the complete server state; returns its timestamp.

        The checkpoint records the log offset of everything already applied,
        so recovery replays exactly the batches logged after it.  Old
        checkpoints beyond ``keep_checkpoints`` are pruned (the genesis one
        is always kept).
        """
        self._log.sync()
        timestamp = self._server.current_timestamp
        _write_checkpoint(
            self._checkpoint_dir,
            timestamp,
            self._log.offset,
            self._server.snapshot_state(),
        )
        self._ticks_since_checkpoint = 0
        self._prune_checkpoints()
        return timestamp

    def _prune_checkpoints(self) -> None:
        paths = _list_checkpoints(self._checkpoint_dir)
        if len(paths) <= 1:
            return
        genesis, rest = paths[0], paths[1:]
        del genesis  # always retained
        excess = len(rest) - self._keep_checkpoints
        for path in rest[:excess]:
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        data_dir: Union[str, os.PathLike],
        *,
        checkpoint_every: Optional[int] = 16,
        sync: bool = True,
        keep_checkpoints: int = 4,
    ) -> "DurableMonitoringServer":
        """Resume a crashed (or cleanly stopped) durable server.

        Restores the newest checkpoint that decodes cleanly (a checkpoint
        torn by the crash is skipped in favor of the previous one), repairs
        the event log's torn tail, discards any non-durable pending buffer
        the checkpoint captured when logged batches remain, and replays the
        log tail tick by tick.  The result is byte-identical to a run that
        never crashed: same results, same timestamp.

        Raises:
            RecoveryError: when no checkpoint is readable, a restored
                snapshot disagrees with its checkpoint's timestamp, or the
                log tail does not line up with the restored clock.

        Example::

            durable = DurableMonitoringServer.recover("service-data")
            print(durable.recovered_ticks, durable.current_timestamp)
        """
        data_path = pathlib.Path(data_dir)
        directory = data_path / _CHECKPOINT_DIRNAME
        paths = _list_checkpoints(directory)
        if not paths:
            raise RecoveryError(f"{data_path}: no checkpoints to recover from")
        server: Optional[MonitoringServer] = None
        record: Optional[Dict[str, object]] = None
        errors: List[str] = []
        for path in reversed(paths):
            try:
                candidate = _read_checkpoint(path)
                server = restore_server(candidate["state"])
            except RecoveryError as exc:
                errors.append(str(exc))
                continue
            record = candidate
            break
        if server is None or record is None:
            raise RecoveryError(
                f"{data_path}: every checkpoint failed to restore: "
                + "; ".join(errors)
            )
        if server.current_timestamp != record["timestamp"]:
            server.close()
            raise RecoveryError(
                f"restored snapshot is at timestamp {server.current_timestamp} "
                f"but its checkpoint recorded {record['timestamp']}"
            )
        log = EventLog(data_path / _LOG_FILENAME, sync=sync)  # repairs torn tail
        try:
            payloads = read_event_log(log.path, start_offset=int(record["log_offset"]))
            recovered = 0
            if payloads:
                # The checkpoint may have captured ingested-but-unticked
                # updates; the first logged batch after it is a superset of
                # them, so drop the buffer to avoid double application.
                server.discard_pending()
            for payload in payloads:
                batch = decode_batch(payload)
                if batch.timestamp != server.current_timestamp:
                    raise RecoveryError(
                        f"log replay expected a batch for timestamp "
                        f"{server.current_timestamp}, found {batch.timestamp}"
                    )
                server.apply_updates(batch)
                server.tick()
                recovered += 1
        except BaseException:
            log.close()
            server.close()
            raise
        durable = cls.__new__(cls)
        durable._server = server
        durable._data_dir = data_path
        durable._checkpoint_dir = directory
        durable._checkpoint_every = checkpoint_every
        durable._keep_checkpoints = keep_checkpoints
        durable._ticks_since_checkpoint = recovered
        durable._recovered_ticks = recovered
        durable._closed = False
        durable._log = log
        if (
            checkpoint_every is not None
            and durable._ticks_since_checkpoint >= checkpoint_every
        ):
            durable.checkpoint()
        return durable

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the event log and the wrapped server (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._log.close()
        finally:
            self._server.close()

    def __enter__(self) -> "DurableMonitoringServer":
        """Enter a context that guarantees :meth:`close` on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the durable server when the ``with`` block ends."""
        self.close()
