"""OSM-style nodes/ways importer and deterministic synthetic-city generator.

Real road datasets ship as *nodes* (points with coordinates) plus *ways*
(polylines tagged with a road class), not as clean edge lists.  This module
accepts a compact text encoding of that shape — the ``# repro ways v1``
format — and turns it into a monitoring-ready :class:`~repro.network.graph.RoadNetwork`:

* every consecutive node pair of a way becomes an edge candidate;
* self loops are dropped and parallel edges between the same endpoint pair
  are deduplicated (the cheapest survives — the fastest road wins);
* only the largest connected component is kept, because every monitoring
  algorithm in this repo assumes reachable queries/objects;
* edge weights are travel times derived from the way's *speed class*
  (``length * reference_speed / class_speed``), so a motorway kilometre is
  cheaper than a side-street kilometre.

The module also contains a deterministic synthetic-city generator
(:func:`synthetic_city_text`) that emits the *same* text format: an
arterial grid overlaid on a jittered side-street mesh, with random
side-street removal producing dead ends and the realistic mix of degree-1,
degree-2 (shape point) and degree-3/4 (intersection) nodes.  Because the
generator goes through the importer, every generated benchmark network
exercises the full parse → dedup → largest-component pipeline.

Format reference (see also ``docs/realism.md``)::

    # repro ways v1
    node <id> <x> <y>
    way <id> <class> <node_id> <node_id> [<node_id> ...]

Blank lines and ``#`` comments are ignored after the header; ``<class>``
must be one of :data:`SPEED_CLASSES`.
"""

from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.exceptions import NetworkError
from repro.network.graph import RoadNetwork

PathLike = Union[str, os.PathLike]

WAYS_HEADER = "# repro ways v1"

#: Road classes and their free-flow speeds (workspace units per time unit).
#: Weights are travel times normalised so that a ``street`` edge's weight
#: equals its geometric length: ``weight = length * REFERENCE_SPEED / speed``.
SPEED_CLASSES: Mapping[str, float] = {
    "motorway": 120.0,
    "arterial": 80.0,
    "street": 50.0,
    "side": 30.0,
}

#: The speed whose class maps lengths to weights unchanged.
REFERENCE_SPEED = 50.0

#: Weight assigned to degenerate zero-length segments (coincident nodes).
MIN_SEGMENT_WEIGHT = 1e-9


@dataclass(frozen=True)
class Way:
    """One parsed way: an ordered polyline of node ids with a road class.

    Example::

        way = Way(way_id=7, speed_class="arterial", node_ids=(1, 2, 3))
        assert len(way.node_ids) - 1 == 2   # two edge candidates
    """

    way_id: int
    speed_class: str
    node_ids: Tuple[int, ...]


@dataclass(frozen=True)
class ParsedWays:
    """The raw result of parsing a ways text: nodes and ways, unvalidated.

    ``nodes`` maps node id → ``(x, y)``; ``ways`` preserves file order.
    Topology cleanup (dedup, components) happens later in
    :func:`import_ways_text`.

    Example::

        parsed = parse_ways_text(WAYS_HEADER + "\\nnode 1 0 0\\nnode 2 1 0\\n"
                                 "way 1 street 1 2\\n")
        assert parsed.nodes[1] == (0.0, 0.0) and len(parsed.ways) == 1
    """

    nodes: Dict[int, Tuple[float, float]]
    ways: Tuple[Way, ...]


@dataclass
class ImportStats:
    """Counters describing what the import pipeline kept and dropped.

    Attributes:
        nodes_parsed: node records in the input.
        ways_parsed: way records in the input.
        segments_parsed: consecutive node pairs across all ways.
        self_loops_dropped: segments whose endpoints were the same node.
        zero_length_segments: kept segments with coincident endpoints
            (assigned :data:`MIN_SEGMENT_WEIGHT`).
        parallel_dropped: segments discarded because a cheaper (or earlier,
            on ties) segment already connected the same endpoint pair.
        components: connected components among the deduplicated segments.
        isolated_nodes_dropped: parsed nodes referenced by no kept segment.
        component_nodes_dropped: nodes outside the largest component.
        nodes_kept: nodes in the final network.
        edges_kept: edges in the final network.

    Example::

        result = import_ways_text(text)
        assert result.stats.edges_kept == result.network.edge_count
    """

    nodes_parsed: int = 0
    ways_parsed: int = 0
    segments_parsed: int = 0
    self_loops_dropped: int = 0
    zero_length_segments: int = 0
    parallel_dropped: int = 0
    components: int = 0
    isolated_nodes_dropped: int = 0
    component_nodes_dropped: int = 0
    nodes_kept: int = 0
    edges_kept: int = 0


@dataclass
class ImportResult:
    """A monitoring-ready network plus provenance from the import pipeline.

    Attributes:
        network: the largest-component, deduplicated :class:`RoadNetwork`
            with sequential edge ids ``0..edge_count-1``.
        stats: what was kept/dropped (see :class:`ImportStats`).
        speed_classes: edge id → road-class name; this is what the
            rush-hour traffic model keys its congestion waves on.

    Example::

        result = synthetic_city_network(target_edges=500, seed=7)
        arterials = [e for e, c in result.speed_classes.items()
                     if c == "arterial"]
        assert result.network.is_connected() and arterials
    """

    network: RoadNetwork
    stats: ImportStats
    speed_classes: Dict[int, str] = field(default_factory=dict)


def parse_ways_text(text: str, source: str = "<text>") -> ParsedWays:
    """Parse ``# repro ways v1`` text into nodes and ways.

    No topology cleanup happens here — duplicate node ids, unknown node
    references and malformed records raise, but self loops, parallel edges
    and disconnected pieces are legal input (the import pipeline resolves
    them).

    Args:
        text: the file content, header included.
        source: label used in error messages (a path, usually).

    Raises:
        NetworkError: on a missing header, malformed record, duplicate
            node/way id, or unknown speed class.

    Example::

        parsed = parse_ways_text(
            "# repro ways v1\\nnode 1 0 0\\nnode 2 1 0\\nway 5 side 1 2\\n"
        )
        assert parsed.ways[0].speed_class == "side"
    """
    lines = text.splitlines()
    first_content = next((line.strip() for line in lines if line.strip()), "")
    if first_content != WAYS_HEADER:
        raise NetworkError(
            f"{source}: not a repro ways file (expected header {WAYS_HEADER!r})"
        )
    nodes: Dict[int, Tuple[float, float]] = {}
    ways: List[Way] = []
    way_ids = set()
    seen_header = False
    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if line == WAYS_HEADER and not seen_header:
                seen_header = True
            continue
        parts = line.split()
        kind = parts[0]
        try:
            if kind == "node":
                if len(parts) != 4:
                    raise ValueError("expected 'node <id> <x> <y>'")
                node_id = int(parts[1])
                if node_id in nodes:
                    raise ValueError(f"duplicate node id {node_id}")
                nodes[node_id] = (float(parts[2]), float(parts[3]))
            elif kind == "way":
                if len(parts) < 5:
                    raise ValueError(
                        "expected 'way <id> <class> <node> <node> [...]'"
                    )
                way_id = int(parts[1])
                if way_id in way_ids:
                    raise ValueError(f"duplicate way id {way_id}")
                speed_class = parts[2]
                if speed_class not in SPEED_CLASSES:
                    raise ValueError(
                        f"unknown speed class {speed_class!r} "
                        f"(known: {', '.join(sorted(SPEED_CLASSES))})"
                    )
                node_ids = tuple(int(part) for part in parts[3:])
                missing = [n for n in node_ids if n not in nodes]
                if missing:
                    raise ValueError(f"way references undefined node {missing[0]}")
                way_ids.add(way_id)
                ways.append(Way(way_id, speed_class, node_ids))
            else:
                raise ValueError(f"unknown record type {kind!r}")
        except ValueError as exc:
            raise NetworkError(f"{source}:{line_no}: {exc} in {line!r}") from exc
    return ParsedWays(nodes=nodes, ways=tuple(ways))


def import_ways_text(text: str, source: str = "<text>") -> ImportResult:
    """Parse and import ways text into a monitoring-ready network.

    Pipeline: parse → explode ways into segments → drop self loops → dedup
    parallel edges (cheapest wins, earliest wins ties) → keep the largest
    connected component (ties broken by smallest contained node id) →
    renumber edges sequentially in surviving input order.

    Raises:
        NetworkError: on malformed input or when no usable segment remains.

    Example::

        result = import_ways_text(synthetic_city_text(CitySpec(), seed=3))
        assert result.network.is_connected()
        assert all(e.weight > 0 for e in result.network.edges())
    """
    parsed = parse_ways_text(text, source=source)
    return import_parsed(parsed, source=source)


def import_road_network(path: PathLike) -> ImportResult:
    """Import a ``# repro ways v1`` file from disk.

    Raises:
        NetworkError: on malformed content (errors carry the path and line).

    Example::

        result = import_road_network("tests/data/realism/triangle_city.ways")
        print(result.stats.edges_kept)
    """
    path = Path(path)
    return import_ways_text(path.read_text(encoding="utf-8"), source=str(path))


def import_parsed(parsed: ParsedWays, source: str = "<text>") -> ImportResult:
    """Run the cleanup pipeline on an already-parsed ways description.

    See :func:`import_ways_text` for the pipeline steps; this entry point
    exists so programmatically-built :class:`ParsedWays` (e.g. from property
    tests) can skip text serialisation.

    Raises:
        NetworkError: when no usable segment remains after cleanup.

    Example::

        parsed = ParsedWays(
            nodes={1: (0.0, 0.0), 2: (1.0, 0.0)},
            ways=(Way(1, "street", (1, 2)),),
        )
        result = import_parsed(parsed)
        assert result.network.edge_count == 1
    """
    stats = ImportStats(nodes_parsed=len(parsed.nodes), ways_parsed=len(parsed.ways))

    # Explode ways into candidate segments, dropping self loops and keeping
    # the cheapest segment per unordered endpoint pair.
    best: Dict[Tuple[int, int], Tuple[float, str]] = {}
    order: List[Tuple[int, int]] = []
    for way in parsed.ways:
        speed = SPEED_CLASSES[way.speed_class]
        for u, v in zip(way.node_ids, way.node_ids[1:]):
            stats.segments_parsed += 1
            if u == v:
                stats.self_loops_dropped += 1
                continue
            ux, uy = parsed.nodes[u]
            vx, vy = parsed.nodes[v]
            length = math.hypot(vx - ux, vy - uy)
            weight = length * (REFERENCE_SPEED / speed)
            if weight <= 0.0:
                stats.zero_length_segments += 1
                weight = MIN_SEGMENT_WEIGHT
            key = (u, v) if u <= v else (v, u)
            existing = best.get(key)
            if existing is None:
                best[key] = (weight, way.speed_class)
                order.append(key)
            else:
                stats.parallel_dropped += 1
                if weight < existing[0]:
                    best[key] = (weight, way.speed_class)
    if not best:
        raise NetworkError(f"{source}: no usable road segments after import")

    # Largest connected component over the deduplicated segment graph
    # (union-find; ties broken by smallest contained node id so the result
    # is deterministic regardless of dict iteration details).
    parent: Dict[int, int] = {}

    def find(node: int) -> int:
        """Root of ``node``'s component, with path compression."""
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    for u, v in order:
        parent.setdefault(u, u)
        parent.setdefault(v, v)
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    members: Dict[int, List[int]] = {}
    for node in parent:
        members.setdefault(find(node), []).append(node)
    stats.components = len(members)
    stats.isolated_nodes_dropped = len(parsed.nodes) - len(parent)
    winner = max(members.items(), key=lambda item: (len(item[1]), -item[0]))[0]
    kept_nodes = set(members[winner])
    stats.component_nodes_dropped = len(parent) - len(kept_nodes)

    network = RoadNetwork()
    for node_id in sorted(kept_nodes):
        x, y = parsed.nodes[node_id]
        network.add_node(node_id, x, y)
    speed_classes: Dict[int, str] = {}
    edge_id = 0
    for u, v in order:
        if u not in kept_nodes:
            continue
        weight, speed_class = best[(u, v)]
        network.add_edge(edge_id, u, v, weight)
        speed_classes[edge_id] = speed_class
        edge_id += 1
    stats.nodes_kept = network.node_count
    stats.edges_kept = network.edge_count
    return ImportResult(network=network, stats=stats, speed_classes=speed_classes)


@dataclass(frozen=True)
class CitySpec:
    """Shape parameters for the deterministic synthetic city.

    The city is a ``rows x cols`` jittered mesh.  Every ``arterial_every``-th
    row/column line is a single long arterial way (crossing side streets at
    every mesh node); the remaining mesh segments are two-node ``street`` or
    ``side`` ways, a fraction of which is removed to create dead ends and the
    occasional disconnected pocket (the importer's largest-component pass
    cleans those up).  A small fraction of side segments is emitted twice to
    exercise parallel-edge dedup on every generated city.

    Attributes:
        rows: mesh node rows (>= 2).
        cols: mesh node columns (>= 2).
        spacing: distance between adjacent mesh nodes.
        jitter: node coordinate jitter as a fraction of ``spacing``.
        arterial_every: grid period of arterial lines (0 disables arterials).
        motorway_ring: when True the outermost grid lines become motorways.
        side_fraction: probability a non-arterial segment is class ``side``
            instead of ``street``.
        removal_fraction: probability a non-arterial segment is removed.
        duplicate_fraction: probability a non-arterial segment is emitted
            twice (as a parallel way, deduplicated on import).

    Example::

        spec = CitySpec(rows=12, cols=12, removal_fraction=0.2)
        result = import_ways_text(synthetic_city_text(spec, seed=1))
        assert result.network.is_connected()
    """

    rows: int = 16
    cols: int = 16
    spacing: float = 100.0
    jitter: float = 0.15
    arterial_every: int = 4
    motorway_ring: bool = True
    side_fraction: float = 0.35
    removal_fraction: float = 0.12
    duplicate_fraction: float = 0.02

    @staticmethod
    def for_target_edges(target_edges: int) -> "CitySpec":
        """A spec sized so the imported city lands near *target_edges*.

        The mesh has roughly ``2 * rows * cols`` segments before removal;
        the side is solved from that and padded slightly to compensate for
        removed segments and the trimmed component.

        Example::

            spec = CitySpec.for_target_edges(20_000)
            result = import_ways_text(synthetic_city_text(spec, seed=0))
            assert 15_000 < result.network.edge_count < 25_000
        """
        if target_edges < 4:
            raise NetworkError(f"target_edges must be >= 4, got {target_edges}")
        side = max(2, round(math.sqrt(target_edges / 2.0) * 1.05) + 1)
        return CitySpec(rows=side, cols=side)


def synthetic_city_text(spec: CitySpec, seed: int) -> str:
    """Emit a deterministic synthetic city in ``# repro ways v1`` format.

    Deterministic from ``(spec, seed)``: the same pair always yields the
    same bytes, so goldens and benchmarks are reproducible anywhere.

    Example::

        text_a = synthetic_city_text(CitySpec(rows=6, cols=6), seed=42)
        text_b = synthetic_city_text(CitySpec(rows=6, cols=6), seed=42)
        assert text_a == text_b
    """
    if spec.rows < 2 or spec.cols < 2:
        raise NetworkError(
            f"city mesh needs rows, cols >= 2, got {spec.rows}x{spec.cols}"
        )
    rng = random.Random(f"realism-city/{spec.rows}x{spec.cols}/{seed}")
    lines = [WAYS_HEADER]

    def node_id(r: int, c: int) -> int:
        """Row-major mesh node id."""
        return r * spec.cols + c

    for r in range(spec.rows):
        for c in range(spec.cols):
            x = c * spec.spacing + rng.uniform(-1.0, 1.0) * spec.jitter * spec.spacing
            y = r * spec.spacing + rng.uniform(-1.0, 1.0) * spec.jitter * spec.spacing
            lines.append(f"node {node_id(r, c)} {x:.3f} {y:.3f}")

    way_id = 0

    def emit_way(speed_class: str, node_ids: Sequence[int]) -> None:
        """Append one way record, consuming the next way id."""
        nonlocal way_id
        lines.append(f"way {way_id} {speed_class} {' '.join(map(str, node_ids))}")
        way_id += 1

    def line_class(index: int, last: int) -> str:
        """Speed class of an arterial grid line (ring lines are motorway)."""
        if spec.motorway_ring and index in (0, last):
            return "motorway"
        return "arterial"

    arterial_rows = set()
    arterial_cols = set()
    if spec.arterial_every > 0:
        arterial_rows = {
            r for r in range(spec.rows) if r % spec.arterial_every == 0
        } | {spec.rows - 1}
        arterial_cols = {
            c for c in range(spec.cols) if c % spec.arterial_every == 0
        } | {spec.cols - 1}

    # Arterial/motorway lines: one long multi-node way each, so interior
    # crossings become degree-4 intersections and removed side streets leave
    # degree-2 shape points along the arterial.
    for r in sorted(arterial_rows):
        emit_way(
            line_class(r, spec.rows - 1),
            [node_id(r, c) for c in range(spec.cols)],
        )
    for c in sorted(arterial_cols):
        emit_way(
            line_class(c, spec.cols - 1),
            [node_id(r, c) for r in range(spec.rows)],
        )

    # Side-street mesh: the remaining horizontal/vertical unit segments as
    # two-node ways, with removal (dead ends) and occasional duplicates.
    def emit_side_segment(a: int, b: int) -> None:
        """Emit one infill segment, subject to removal/duplication draws."""
        if rng.random() < spec.removal_fraction:
            return
        speed_class = "side" if rng.random() < spec.side_fraction else "street"
        emit_way(speed_class, (a, b))
        if rng.random() < spec.duplicate_fraction:
            emit_way("street", (a, b))

    for r in range(spec.rows):
        if r in arterial_rows:
            continue
        for c in range(spec.cols - 1):
            emit_side_segment(node_id(r, c), node_id(r, c + 1))
    for c in range(spec.cols):
        if c in arterial_cols:
            continue
        for r in range(spec.rows - 1):
            emit_side_segment(node_id(r, c), node_id(r + 1, c))

    return "\n".join(lines) + "\n"


def synthetic_city_network(target_edges: int, seed: int) -> ImportResult:
    """Generate and import a synthetic city near *target_edges* edges.

    Convenience wrapper:
    ``import_ways_text(synthetic_city_text(CitySpec.for_target_edges(n), seed))``.

    Example::

        result = synthetic_city_network(target_edges=1_000, seed=11)
        assert result.network.is_connected()
    """
    spec = CitySpec.for_target_edges(target_edges)
    return import_ways_text(synthetic_city_text(spec, seed), source="<synthetic>")
