"""City-scale realism: road-map import, synthetic cities, rush-hour traffic.

Everything the monitoring stack needs to be exercised against *realistic*
city workloads instead of uniform synthetic grids:

* :mod:`repro.realism.importer` — an OSM-style nodes/ways text importer
  (largest-connected-component extraction, parallel-edge dedup, speed-class
  to weight mapping) plus a deterministic synthetic-city generator that
  emits the same text format, so the importer sits on the path of every
  generated network too;
* :mod:`repro.realism.traffic` — a rush-hour traffic model producing
  per-tick edge-weight update batches: time-of-day congestion waves by
  speed class, Poisson incident storms with decay, and road closures
  (effectively-infinite weights) that later reopen.

Both are deterministic from ``(spec, seed)`` and plug into the scenario /
benchmark harnesses (the ``rush-hour`` and ``gridlock-closures`` presets,
``benchmarks/bench_city_scale.py``).
"""

from repro.realism.importer import (
    CitySpec,
    ImportResult,
    ImportStats,
    ParsedWays,
    SPEED_CLASSES,
    Way,
    import_parsed,
    import_road_network,
    import_ways_text,
    parse_ways_text,
    synthetic_city_network,
    synthetic_city_text,
)
from repro.realism.traffic import (
    RushHourModel,
    RushHourSpec,
    classify_edges,
)

__all__ = [
    "SPEED_CLASSES",
    "Way",
    "ParsedWays",
    "ImportStats",
    "ImportResult",
    "parse_ways_text",
    "import_ways_text",
    "import_parsed",
    "import_road_network",
    "CitySpec",
    "synthetic_city_text",
    "synthetic_city_network",
    "RushHourSpec",
    "RushHourModel",
    "classify_edges",
]
