"""Rush-hour traffic model: congestion waves, incidents, road closures.

Where :class:`repro.mobility.traffic.TrafficModel` produces memoryless ±x %
noise, this model produces *structured* weight streams shaped like a city
day:

* **time-of-day congestion waves** — every edge tracks a target multiplier
  ``1 + (amplitude - 1) * wave(t)`` where ``wave`` is a pair of Gaussian
  bumps (morning and evening peak) over a ``ticks_per_day`` cycle and the
  amplitude depends on the edge's speed class (motorways swing hardest,
  side streets barely notice);
* **incident storms** — a Poisson number of incidents per tick, each
  spiking one edge by ``incident_factor`` and then decaying geometrically
  back to free flow;
* **road closures** — a Poisson number of closures per tick, pinning the
  edge weight to :data:`~repro.network.graph.CLOSED_EDGE_WEIGHT` (the huge
  *finite* closed-road sentinel; true infinities are rejected library-wide)
  for a bounded number of ticks before reopening.

Everything is deterministic from ``(spec, seed)``: two models built with the
same pair emit byte-identical update streams.  The model plugs into
:class:`~repro.testing.scenarios.ScenarioEngine` via
``ScenarioSpec.traffic_spec`` (the ``rush-hour`` / ``gridlock-closures``
presets) and into the city-scale benchmarks directly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.events import EdgeWeightUpdate
from repro.exceptions import SimulationError
from repro.network.graph import CLOSED_EDGE_WEIGHT, RoadNetwork

#: Incident multipliers below this are considered fully decayed.
_INCIDENT_FLOOR = 1.05

#: Relative weight change below which no update is emitted (keeps steady
#: state quiet instead of streaming 1e-12-sized deltas every tick).
_MIN_RELATIVE_CHANGE = 1e-9


@dataclass(frozen=True)
class RushHourSpec:
    """Parameters of the rush-hour model (all rates are per tick).

    Attributes:
        ticks_per_day: length of one day cycle in ticks.
        morning_peak: morning-peak position as a fraction of the day.
        evening_peak: evening-peak position as a fraction of the day.
        peak_width: Gaussian peak width as a fraction of the day.
        class_amplitudes: ``(speed_class, peak_multiplier)`` pairs — the
            congestion multiplier each class reaches at the top of a peak.
        congestion_update_fraction: fraction of edges whose weight is
            refreshed toward its wave target each tick (incident and
            closure edges always refresh on top of this).
        smoothing: per-refresh exponential step toward the target in
            ``(0, 1]`` (1 jumps straight to the target).
        incident_rate: Poisson mean of new incidents per tick.
        incident_factor: multiplier a fresh incident applies to its edge.
        incident_decay: per-tick geometric decay of an incident's excess
            multiplier (``m -> 1 + (m - 1) * decay``).
        closure_rate: Poisson mean of new road closures per tick.
        closure_duration: inclusive ``(min, max)`` closure length in ticks.
        max_multiplier: cap on the combined wave x incident multiplier.

    Example::

        spec = RushHourSpec(closure_rate=0.5)
        model = RushHourModel(network, spec=spec, seed=3)
        updates = model.tick(0)
    """

    ticks_per_day: int = 48
    morning_peak: float = 0.35
    evening_peak: float = 0.78
    peak_width: float = 0.07
    class_amplitudes: Tuple[Tuple[str, float], ...] = (
        ("motorway", 2.6),
        ("arterial", 2.0),
        ("street", 1.5),
        ("side", 1.15),
    )
    congestion_update_fraction: float = 0.10
    smoothing: float = 0.55
    incident_rate: float = 0.8
    incident_factor: float = 3.0
    incident_decay: float = 0.65
    closure_rate: float = 0.0
    closure_duration: Tuple[int, int] = (2, 6)
    max_multiplier: float = 8.0

    def with_overrides(self, **overrides) -> "RushHourSpec":
        """Return a copy with the given fields replaced.

        Example::

            gridlock = RushHourSpec().with_overrides(closure_rate=1.0)
        """
        return replace(self, **overrides)

    def wave(self, timestamp: int) -> float:
        """Congestion-wave intensity in ``[0, 1]`` at *timestamp*.

        Two Gaussian bumps per day cycle; 0 is free flow, 1 is the top of
        the worst peak.

        Example::

            spec = RushHourSpec(ticks_per_day=48)
            assert spec.wave(0) < spec.wave(int(48 * spec.morning_peak))
        """
        frac = (timestamp % self.ticks_per_day) / self.ticks_per_day
        total = 0.0
        for peak in (self.morning_peak, self.evening_peak):
            # Nearest image of the peak on the circular day (so the wave is
            # continuous across midnight).
            delta = min(abs(frac - peak), 1.0 - abs(frac - peak))
            total += math.exp(-((delta / self.peak_width) ** 2))
        return min(1.0, total)


def classify_edges(network: RoadNetwork) -> Dict[int, str]:
    """Heuristic speed classes for a network without import provenance.

    Networks built by :func:`repro.realism.importer.import_ways_text` carry
    real classes in ``ImportResult.speed_classes``; for everything else
    (synthetic grids, ``city_network``) this assigns classes by base-weight
    rank — the longest 5 % of edges become motorways, the next 15 %
    arterials, the next 50 % streets and the rest side streets.  Purely
    deterministic (ties broken by edge id).

    Example::

        classes = classify_edges(network)
        assert set(classes) == set(network.edge_ids())
    """
    ranked = sorted(
        network.edge_ids(),
        key=lambda edge_id: (-network.edge(edge_id).base_weight, edge_id),
    )
    classes: Dict[int, str] = {}
    count = len(ranked)
    for rank, edge_id in enumerate(ranked):
        fraction = rank / count if count else 0.0
        if fraction < 0.05:
            classes[edge_id] = "motorway"
        elif fraction < 0.20:
            classes[edge_id] = "arterial"
        elif fraction < 0.70:
            classes[edge_id] = "street"
        else:
            classes[edge_id] = "side"
    return classes


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth Poisson sampler (fine for the small per-tick rates used here)."""
    if lam <= 0.0:
        return 0
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


class RushHourModel:
    """Deterministic per-tick edge-weight update generator.

    The model never touches the network: it keeps (or shares) a weight view
    and emits :class:`~repro.core.events.EdgeWeightUpdate` lists whose
    ``old_weight`` values come from that view, so a stream can be
    materialised up front and applied later — the same contract as
    :class:`~repro.testing.scenarios.ScenarioEngine`.

    Args:
        network: the road network (read-only; base weights are the
            free-flow costs the waves multiply).
        spec: model parameters.
        seed: stream seed — ``(spec, seed)`` fully determines the stream.
        speed_classes: edge id → class name (e.g. from
            ``ImportResult.speed_classes``); missing edges, or the whole
            argument, fall back to :func:`classify_edges`.
        weights: optional externally-owned ``{edge_id: current_weight}``
            view to share (the scenario engine passes its own so both
            stressors agree on ``old_weight``); the model builds its own
            from the network when omitted.
        rng_label: namespace mixed into the RNG seed string, letting an
            embedding engine keep this model's stream independent of its
            own RNG consumption.

    Example::

        model = RushHourModel(network, spec=RushHourSpec(), seed=7)
        for timestamp in range(10):
            for update in model.tick(timestamp):
                network.set_edge_weight(update.edge_id, update.new_weight)
    """

    def __init__(
        self,
        network: RoadNetwork,
        spec: Optional[RushHourSpec] = None,
        seed: int = 0,
        speed_classes: Optional[Mapping[int, str]] = None,
        weights: Optional[Dict[int, float]] = None,
        rng_label: str = "rush-hour",
    ) -> None:
        self._spec = spec if spec is not None else RushHourSpec()
        if not 0.0 < self._spec.smoothing <= 1.0:
            raise SimulationError(
                f"smoothing must be in (0, 1], got {self._spec.smoothing}"
            )
        lo, hi = self._spec.closure_duration
        if lo < 1 or hi < lo:
            raise SimulationError(
                f"closure_duration must satisfy 1 <= min <= max, got ({lo}, {hi})"
            )
        self._edges: List[int] = sorted(network.edge_ids())
        if not self._edges:
            raise SimulationError("rush-hour model needs a network with edges")
        self._base: Dict[int, float] = {
            edge_id: network.edge(edge_id).base_weight for edge_id in self._edges
        }
        if weights is None:
            weights = {
                edge_id: network.edge(edge_id).weight for edge_id in self._edges
            }
        self._weights = weights
        fallback: Optional[Dict[int, str]] = None
        resolved: Dict[int, str] = {}
        amplitude_by_class = dict(self._spec.class_amplitudes)
        for edge_id in self._edges:
            speed_class = (speed_classes or {}).get(edge_id)
            if speed_class is None:
                if fallback is None:
                    fallback = classify_edges(network)
                speed_class = fallback[edge_id]
            if speed_class not in amplitude_by_class:
                raise SimulationError(
                    f"edge {edge_id}: class {speed_class!r} has no amplitude in "
                    f"spec.class_amplitudes"
                )
            resolved[edge_id] = speed_class
        self._classes = resolved
        self._amplitudes = amplitude_by_class
        self._rng = random.Random(f"{rng_label}/{seed}")
        #: edge id -> current incident multiplier (> 1 while active)
        self._incidents: Dict[int, float] = {}
        #: edge id -> tick at which the closure lifts
        self._closed_until: Dict[int, int] = {}
        #: round-robin cursor over self._edges for congestion refreshes
        self._refresh_cursor = 0

    @property
    def spec(self) -> RushHourSpec:
        """The model parameters driving this stream."""
        return self._spec

    def closed_edges(self) -> List[int]:
        """Edge ids currently closed (weight pinned to the sentinel).

        Example::

            model.tick(0)
            assert all(isinstance(e, int) for e in model.closed_edges())
        """
        return sorted(self._closed_until)

    def tick(self, timestamp: int) -> List[EdgeWeightUpdate]:
        """Generate (but do not apply) the weight updates of one tick.

        Call with consecutive timestamps; the stream is deterministic from
        the construction arguments.  The model's weight view advances as if
        the updates were applied.

        Example::

            updates = model.tick(timestamp=5)
            assert all(u.new_weight > 0 for u in updates)
        """
        spec = self._spec
        rng = self._rng
        touched: Dict[int, bool] = {}

        # Reopenings first: a closure that expires this tick releases the
        # edge back to wave control (the refresh below emits its update).
        for edge_id in [
            e for e, until in self._closed_until.items() if until <= timestamp
        ]:
            del self._closed_until[edge_id]
            touched[edge_id] = True

        # Decay active incidents; fully-decayed ones are dropped but still
        # refreshed once so their edge settles back toward free flow.
        for edge_id in list(self._incidents):
            decayed = 1.0 + (self._incidents[edge_id] - 1.0) * spec.incident_decay
            if decayed < _INCIDENT_FLOOR:
                del self._incidents[edge_id]
            else:
                self._incidents[edge_id] = decayed
            touched[edge_id] = True

        # Fresh incidents (Poisson); closed edges cannot also have incidents.
        for _ in range(_poisson(rng, spec.incident_rate)):
            edge_id = self._edges[rng.randrange(len(self._edges))]
            if edge_id in self._closed_until:
                continue
            self._incidents[edge_id] = spec.incident_factor
            touched[edge_id] = True

        # Fresh closures (Poisson).
        for _ in range(_poisson(rng, spec.closure_rate)):
            edge_id = self._edges[rng.randrange(len(self._edges))]
            if edge_id in self._closed_until:
                continue
            lo, hi = spec.closure_duration
            self._closed_until[edge_id] = timestamp + rng.randint(lo, hi)
            self._incidents.pop(edge_id, None)
            touched[edge_id] = True

        # Congestion refresh: a deterministic round-robin slice of all edges
        # steps toward its wave target (round-robin rather than sampling so
        # every edge is refreshed regularly regardless of fraction).
        refresh = max(1, int(len(self._edges) * spec.congestion_update_fraction))
        for _ in range(refresh):
            edge_id = self._edges[self._refresh_cursor]
            self._refresh_cursor = (self._refresh_cursor + 1) % len(self._edges)
            touched.setdefault(edge_id, True)

        wave = spec.wave(timestamp)
        updates: List[EdgeWeightUpdate] = []
        for edge_id in sorted(touched):
            old_weight = self._weights[edge_id]
            if edge_id in self._closed_until:
                new_weight = CLOSED_EDGE_WEIGHT
            else:
                amplitude = self._amplitudes[self._classes[edge_id]]
                multiplier = 1.0 + (amplitude - 1.0) * wave
                multiplier *= self._incidents.get(edge_id, 1.0)
                multiplier = min(multiplier, spec.max_multiplier)
                target = self._base[edge_id] * multiplier
                if old_weight == CLOSED_EDGE_WEIGHT:
                    # Reopening: jump straight to the target — smoothing from
                    # the sentinel would take ~40 ticks to become finite-ish.
                    new_weight = target
                else:
                    new_weight = old_weight + spec.smoothing * (target - old_weight)
            if abs(new_weight - old_weight) <= _MIN_RELATIVE_CHANGE * old_weight:
                continue
            self._weights[edge_id] = new_weight
            updates.append(EdgeWeightUpdate(edge_id, old_weight, new_weight))
        return updates
