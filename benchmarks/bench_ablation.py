"""Ablation benchmarks for the design choices called out in DESIGN.md.

Three ablations, each isolating one mechanism of the paper's algorithms:

* **resume versus recompute** — the value of re-using the valid part of an
  expansion tree (IMA's core idea) measured directly on the search engine:
  a resumed search with pre-verified nodes and complete candidates versus a
  fresh Figure-2 search;
* **barrier truncation** — the value of stopping GMA's per-query expansion
  at the monitored active nodes instead of expanding the whole region;
* **influence filtering** — the value of the influence lists: how many of a
  timestamp's object updates actually intersect some query's influence
  region (the rest are ignored by IMA/GMA but still paid for by OVH).
"""

from __future__ import annotations

import random

import pytest

from repro.core.search import expand_knn
from repro.experiments.config import SCALED_DEFAULTS
from repro.network.graph import NetworkLocation
from repro.sim.simulator import Simulator


@pytest.fixture(scope="module")
def scenario():
    config = SCALED_DEFAULTS.with_overrides(timestamps=1)
    simulator = Simulator(config)
    rng = random.Random(7)
    edges = list(simulator.network.edge_ids())
    queries = [NetworkLocation(rng.choice(edges), rng.random()) for _ in range(50)]
    return simulator, config, queries


def test_ablation_fresh_search(benchmark, scenario):
    """Baseline: recompute a query from scratch (what OVH does every timestamp)."""
    simulator, config, queries = scenario
    cursor = {"i": 0}

    def run():
        location = queries[cursor["i"] % len(queries)]
        cursor["i"] += 1
        return expand_knn(
            simulator.network, simulator.edge_table, config.k, query_location=location
        )

    outcome = benchmark(run)
    assert outcome.neighbors


def test_ablation_resumed_search(benchmark, scenario):
    """IMA's resume: pre-verified tree + complete candidates + coverage radius."""
    simulator, config, queries = scenario
    prepared = []
    for location in queries:
        fresh = expand_knn(
            simulator.network, simulator.edge_table, config.k, query_location=location
        )
        prepared.append((location, fresh))
    cursor = {"i": 0}

    def run():
        location, fresh = prepared[cursor["i"] % len(prepared)]
        cursor["i"] += 1
        return expand_knn(
            simulator.network,
            simulator.edge_table,
            config.k,
            query_location=location,
            preverified=fresh.state.node_dist,
            preverified_parent=fresh.state.parent,
            candidates=fresh.neighbors,
            coverage_radius=fresh.radius,
        )

    outcome = benchmark(run)
    assert outcome.neighbors


def test_ablation_barrier_truncated_search(benchmark, scenario):
    """GMA's barrier-bounded evaluation using monitored intersection nodes."""
    simulator, config, queries = scenario
    network = simulator.network
    intersections = [n for n in network.node_ids() if network.degree(n) >= 3]
    rng = random.Random(13)
    barrier_nodes = rng.sample(intersections, min(40, len(intersections)))
    barriers = {
        node_id: expand_knn(
            network, simulator.edge_table, config.k, source_node=node_id
        ).neighbors
        for node_id in barrier_nodes
    }
    cursor = {"i": 0}

    def run():
        location = queries[cursor["i"] % len(queries)]
        cursor["i"] += 1
        return expand_knn(
            network,
            simulator.edge_table,
            config.k,
            query_location=location,
            barrier_candidates=barriers,
        )

    outcome = benchmark(run)
    assert outcome.neighbors


def test_ablation_influence_filtering_effect(benchmark, scenario):
    """How much algorithmic work the influence lists avoid in one timestamp.

    Runs one timestamp with IMA and reports (printed with ``-s``) the number
    of objects considered compared to OVH's recompute-everything approach.
    """
    simulator, config, _ = scenario
    monitors = simulator.build_monitors(["OVH", "IMA"])
    for name, monitor in monitors.items():
        for query_id, location in simulator.query_locations().items():
            monitor.register_query(query_id, location, config.k)
    from repro.core.events import apply_batch

    batch = simulator.generate_batch(0)
    apply_batch(simulator.network, simulator.edge_table, batch.normalized())

    def run():
        return monitors["IMA"].process_batch(batch)

    benchmark.pedantic(run, rounds=1, iterations=1)
    monitors["OVH"].process_batch(batch)
    ovh_work = monitors["OVH"].timestep_reports[-1].counters["objects_considered"]
    ima_work = monitors["IMA"].timestep_reports[-1].counters["objects_considered"]
    print(
        f"\nablation/influence-filtering: objects considered per timestamp "
        f"OVH={ovh_work} IMA={ima_work} "
        f"(saving {100.0 * (1 - ima_work / max(1, ovh_work)):.0f}%)"
    )
    assert ima_work <= ovh_work
