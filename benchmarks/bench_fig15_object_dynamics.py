"""Figure 15 — CPU time versus object agility (a) and object speed (b)."""

from __future__ import annotations


def test_fig15a_object_agility(benchmark, figure_runner):
    """Figure 15(a): effect of the fraction of objects moving per timestamp."""
    figure_runner(benchmark, "fig15a")


def test_fig15b_object_speed(benchmark, figure_runner):
    """Figure 15(b): effect of how far a moving object travels (should be flat)."""
    figure_runner(benchmark, "fig15b")
