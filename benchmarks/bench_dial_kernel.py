"""Dial (bucket-queue, batched) kernel vs the per-query CSR heap kernel.

Two workloads, both driving :class:`~repro.core.ima.ImaMonitor` through
identical update streams on each kernel:

* **resume-heavy** — the acceptance workload: a deep 6K-edge network,
  sparse data objects and k=32 (expansion trees hundreds of nodes deep),
  with half of the non-query edges changing weight every tick.  Every tick
  is dominated by incremental maintenance: per-query tree pruning, resumed
  expansions and influence refreshes — exactly the work the dial kernel
  batches.  The PR acceptance criterion (median speedup >= 1.5x over
  ``kernel="csr"``) is asserted here in full mode.
* **dense default** — the scaled Table-2 defaults with the simulator's
  mixed update stream; the speedup is recorded for trend tracking, not
  asserted (fresh searches dominate there, where both kernels do the same
  expansion work).

Each comparison applies a batch to the shared state, then times
``process_batch`` only (apply time excluded), takes the per-kernel median
of several full stream runs, and prints a ``BENCH`` JSON line; the tracked
pytest-benchmark entry is one dial-kernel tick, so ``check_bench.py``
guards the absolute number too.  Set ``DIAL_BENCH_STRICT=0`` to record
without asserting.  Run with ``--quick`` for the CI smoke sizing.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import time

import pytest

from repro.core.events import EdgeWeightUpdate, apply_batch, UpdateBatch
from repro.core.ima import ImaMonitor
from repro.experiments.config import SCALED_DEFAULTS, SMOKE_DEFAULTS
from repro.sim.simulator import Simulator
from repro.sim.workload import WorkloadConfig

#: The acceptance workload: deep trees (sparse objects, high k — the paper
#: sweeps k up to 200) under a storm that touches half the network per tick.
FULL_CONFIG = WorkloadConfig(
    num_objects=1_000,
    num_queries=200,
    k=48,
    network_edges=6_000,
    edge_agility=0.15,
    object_agility=0.10,
    query_agility=0.0,
    timestamps=1,
    seed=20060912,
)

#: Sized for the CI benchmark-smoke job.
QUICK_CONFIG = FULL_CONFIG.with_overrides(
    num_objects=250, num_queries=60, k=12, network_edges=1_500
)

#: Ticks per stream run and stream runs per kernel (medians over runs).
TICKS = 4
RUNS_FULL = 5
RUNS_QUICK = 3

#: Fraction of the non-query edges whose weight changes per tick.
STORM_FRACTION = 0.5


@pytest.fixture(scope="module")
def bench_config(request):
    return QUICK_CONFIG if request.config.getoption("--quick") else FULL_CONFIG


def _storm_setup(config, kernel, seed=1, ticks=TICKS):
    """An IMA monitor plus a deterministic per-tick edge-storm stream.

    Edges carrying a query are never updated, so affected queries take the
    incremental path (collect/prune/resume/influence-refresh) rather than a
    full recompute; batches are applied right before the tick that
    processes them so every timed tick resumes against a changed network.
    """
    simulator = Simulator(config)
    monitor = ImaMonitor(simulator.network, simulator.edge_table, kernel=kernel)
    for query_id, location in simulator.query_locations().items():
        monitor.register_query(query_id, location, config.k)
    rng = random.Random(seed)
    query_edges = {loc.edge_id for loc in simulator.query_locations().values()}
    free_edges = [e for e in simulator.network.edge_ids() if e not in query_edges]
    weights = {e: simulator.network.edge(e).weight for e in free_edges}
    batches = []
    for timestamp in range(ticks):
        batch = UpdateBatch(timestamp=timestamp)
        for edge_id in rng.sample(free_edges, int(len(free_edges) * STORM_FRACTION)):
            weight = weights[edge_id]
            factor = 1.15 if rng.random() < 0.5 else 0.87
            weights[edge_id] = weight * factor
            batch.edge_updates.append(
                EdgeWeightUpdate(edge_id, weight, weight * factor)
            )
        batches.append(batch)
    return simulator, monitor, batches


def _run_storm_stream(config, kernel):
    """Total process_batch seconds over one storm stream (apply excluded)."""
    simulator, monitor, batches = _storm_setup(config, kernel)
    processing = 0.0
    for batch in batches:
        apply_batch(simulator.network, simulator.edge_table, batch.normalized())
        start = time.perf_counter()
        monitor.process_batch(batch)
        processing += time.perf_counter() - start
    return processing


def test_dial_resume_heavy_speedup(benchmark, bench_config):
    """Resume-heavy storm ticks: dial batch kernel vs per-query CSR kernel.

    The dial run is tracked by pytest-benchmark (and therefore by the
    committed baseline through scripts/check_bench.py); the speedup over
    the csr kernel on the identical stream lands in ``extra_info`` and the
    printed BENCH line.  Full mode asserts the acceptance floor.
    """
    runs = RUNS_QUICK if bench_config is QUICK_CONFIG else RUNS_FULL
    _run_storm_stream(bench_config, "csr")  # warm caches for both kernels
    _run_storm_stream(bench_config, "dial")
    csr_seconds = statistics.median(
        _run_storm_stream(bench_config, "csr") for _ in range(runs)
    )
    dial_seconds = statistics.median(
        _run_storm_stream(bench_config, "dial") for _ in range(runs)
    )
    speedup = csr_seconds / dial_seconds

    simulator, monitor, batches = _storm_setup(bench_config, "dial")
    cursor = {"index": 0}

    def one_tick():
        batch = batches[cursor["index"]]
        cursor["index"] += 1
        apply_batch(simulator.network, simulator.edge_table, batch.normalized())
        return monitor.process_batch(batch)

    benchmark.pedantic(one_tick, rounds=len(batches), iterations=1)
    benchmark.extra_info["csr_seconds"] = round(csr_seconds, 4)
    benchmark.extra_info["dial_seconds"] = round(dial_seconds, 4)
    benchmark.extra_info["dial_speedup"] = round(speedup, 3)
    record = {
        "benchmark": "dial_kernel_resume_heavy",
        "queries": bench_config.num_queries,
        "k": bench_config.k,
        "network_edges": bench_config.network_edges,
        "storm_fraction": STORM_FRACTION,
        "ticks": TICKS,
        "runs": runs,
        "csr_ms": round(csr_seconds * 1000.0, 2),
        "dial_ms": round(dial_seconds * 1000.0, 2),
        "speedup": round(speedup, 3),
    }
    print(f"\nBENCH {json.dumps(record)}")
    if os.environ.get("DIAL_BENCH_STRICT", "1") == "0":
        return
    if bench_config is QUICK_CONFIG:
        # Smoke sizing: trees are shallow, so batching has little to amortize;
        # just prove the dial kernel is not pathological.
        assert speedup > 0.6, record
    else:
        # The PR acceptance floor on the resume-heavy workload.
        assert speedup >= 1.5, record


def test_dial_dense_default_speedup(bench_config):
    """Dense-default mixed stream: recorded for the BENCH trajectory only."""
    config = (
        SMOKE_DEFAULTS if bench_config is QUICK_CONFIG else SCALED_DEFAULTS
    ).with_overrides(timestamps=1)

    def run(kernel):
        simulator = Simulator(config)
        monitor = ImaMonitor(simulator.network, simulator.edge_table, kernel=kernel)
        for query_id, location in simulator.query_locations().items():
            monitor.register_query(query_id, location, config.k)
        batches = [simulator.generate_batch(timestamp) for timestamp in range(8)]
        processing = 0.0
        for batch in batches:
            apply_batch(simulator.network, simulator.edge_table, batch.normalized())
            start = time.perf_counter()
            monitor.process_batch(batch)
            processing += time.perf_counter() - start
        return processing

    run("csr")
    run("dial")
    csr_seconds = statistics.median(run("csr") for _ in range(3))
    dial_seconds = statistics.median(run("dial") for _ in range(3))
    record = {
        "benchmark": "dial_kernel_dense_default",
        "csr_ms": round(csr_seconds * 1000.0, 2),
        "dial_ms": round(dial_seconds * 1000.0, 2),
        "speedup": round(csr_seconds / dial_seconds, 3),
    }
    print(f"\nBENCH {json.dumps(record)}")
    # Loose sanity floor only: fresh expansions dominate this stream and the
    # two kernels do identical algorithmic work there.
    assert csr_seconds / dial_seconds > 0.5, record
