"""Figure 19 — Brinkhoff-style generator on the Oldenburg-like network."""

from __future__ import annotations


def test_fig19a_brinkhoff_query_cardinality(benchmark, figure_runner):
    """Figure 19(a): destination-directed movement, varying query cardinality."""
    figure_runner(benchmark, "fig19a")


def test_fig19b_brinkhoff_number_of_neighbors(benchmark, figure_runner):
    """Figure 19(b): destination-directed movement, varying k."""
    figure_runner(benchmark, "fig19b")
