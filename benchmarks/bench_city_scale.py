"""City-scale tick latency and memory: 100K+ edges, 100K+ objects.

The scale leg of the ROADMAP "city-scale realism" item: a synthetic city
from :func:`repro.realism.synthetic_city_network` (so the full importer
pipeline is on the measured path), 100K+ moving objects, and a rush-hour
traffic stream (:class:`repro.realism.RushHourModel` — congestion waves,
incidents, a trickle of closures) driving both the ``dial`` and ``csr``
kernels through the batched ``apply_updates`` + ``tick`` pipeline (the
``dial`` leg is the headline BENCH record; running several
independently-shaped benchmarks also gives ``check_bench.py``'s
median-ratio machine calibration enough points to catch a single-path
regression).

Per-tick wall-clock goes through pytest-benchmark as usual; on top of
that the summary test prints a ``BENCH`` JSON line recording

* ``p50_ms`` / ``p95_ms`` / ``p99_ms`` — tick-latency percentiles over the
  measured rounds (linear interpolation; with ~10 rounds the p99 is the
  max — recorded anyway so the methodology survives larger ``--rounds``
  reruns unchanged);
* ``peak_rss_mb`` — the process peak resident set
  (``getrusage(RUSAGE_SELF).ru_maxrss``), i.e. the true high-water mark
  including network construction and object load, not just steady state.

``--quick`` runs the ~20K-edge smoke sizing used by the CI ``scale-smoke``
job, which gates the medians against ``BENCH_city_baseline.json`` via
``check_bench.py --baseline`` and asserts ``peak_rss_mb`` under a ceiling
(override with ``CITY_BENCH_RSS_MB``; ``CITY_BENCH_STRICT=0`` records
without asserting).

Multi-core methodology (honest on a 1-core container): the sharded leg
only runs when ``CITY_BENCH_WORKERS=<n>`` is set.  It records
``wall_speedup`` plus the host's core count in the BENCH line, and only
*asserts* speedup when ``CITY_BENCH_WALL=1`` **and** the host actually has
>= n cores — on the 1-core CI runner the figure is recorded as the
methodology artifact it is, never enforced.
"""

from __future__ import annotations

import json
import os
import random
import resource
import sys
import time
from dataclasses import dataclass

import pytest

from repro.core.events import UpdateBatch
from repro.core.server import MonitoringServer
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation
from repro.realism import RushHourModel, RushHourSpec, synthetic_city_network

#: Traffic for the benchmark: waves + incidents + a trickle of closures.
#: The refresh fraction is kept low so a tick carries ~2K weight updates at
#: the 100K sizing — a heavy but realistic sensor feed, not a full sweep.
TRAFFIC = RushHourSpec(
    ticks_per_day=48,
    incident_rate=2.0,
    closure_rate=0.2,
    closure_duration=(2, 5),
    congestion_update_fraction=0.02,
)


@dataclass(frozen=True)
class CityBenchConfig:
    """Sizing of one city-scale run."""

    target_edges: int
    num_objects: int
    num_queries: int
    k: int
    ticks: int
    move_fraction: float
    seed: int


#: The acceptance sizing: the ISSUE-8 100K+ edges / 100K+ objects run.
FULL_CONFIG = CityBenchConfig(
    target_edges=100_000,
    num_objects=100_000,
    num_queries=64,
    k=8,
    ticks=8,
    move_fraction=0.01,
    seed=20060912,
)

#: CI scale-smoke sizing (~20K edges, bounded job budget).
QUICK_CONFIG = CityBenchConfig(
    target_edges=20_000,
    num_objects=20_000,
    num_queries=32,
    k=8,
    ticks=5,
    move_fraction=0.01,
    seed=20060912,
)

#: Query ids start here (clear of object ids, as everywhere else).
QUERY_ID_BASE = 1_000_000

#: Tick wall times and run metadata, for the summary test.
_RESULTS: dict = {}


def _peak_rss_mb() -> float:
    """Process peak resident set in MiB (ru_maxrss is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _percentile(sorted_values, fraction):
    """Linear-interpolation percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    position = (len(sorted_values) - 1) * fraction
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    return sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight


@pytest.fixture(scope="module")
def bench_config(request):
    return QUICK_CONFIG if request.config.getoption("--quick") else FULL_CONFIG


def test_city_import_throughput(benchmark, bench_config):
    """Generate + parse + import the synthetic city (the full ways pipeline)."""
    def build():
        return synthetic_city_network(bench_config.target_edges, seed=7)

    result = benchmark.pedantic(build, rounds=2, iterations=1)
    assert result.network.is_connected()
    benchmark.extra_info["edges"] = result.network.edge_count
    benchmark.extra_info["nodes"] = result.network.node_count


def _build_workload(config, kernel="dial", workers=None):
    """Server primed with objects/queries, plus pre-materialised batches."""
    imported = synthetic_city_network(config.target_edges, seed=config.seed)
    network = imported.network
    server = MonitoringServer(
        network,
        "ima",
        edge_table=EdgeTable(network, build_spatial_index=False),
        kernel=kernel,
        workers=workers,
    )
    rng = random.Random(f"city-bench/{config.seed}")
    edges = sorted(network.edge_ids())

    def draw_location():
        return NetworkLocation(rng.choice(edges), rng.random())

    objects = {object_id: draw_location() for object_id in range(config.num_objects)}
    for object_id, location in objects.items():
        server.add_object(object_id, location)
    for index in range(config.num_queries):
        server.add_query(QUERY_ID_BASE + index, draw_location(), k=config.k)

    # Pre-materialise every tick's batch so generation cost stays out of the
    # measured path: rush-hour traffic plus a 1% object-move stream.
    traffic = RushHourModel(
        network,
        spec=TRAFFIC,
        seed=config.seed,
        speed_classes=imported.speed_classes,
    )
    movers = max(1, int(config.num_objects * config.move_fraction))
    batches = []
    for timestamp in range(config.ticks):
        batch = UpdateBatch(timestamp=timestamp)
        batch.edge_updates.extend(traffic.tick(timestamp))
        for object_id in rng.sample(range(config.num_objects), movers):
            new_location = draw_location()
            batch.add_object_move(object_id, objects[object_id], new_location)
            objects[object_id] = new_location
        batches.append(batch)
    return server, batches


@pytest.mark.parametrize("kernel", ["dial", "csr", "native"])
def test_city_scale_tick_latency(benchmark, bench_config, kernel):
    """One rush-hour tick on the full-size city, percentiles recorded.

    Several kernels run so the CI baseline holds several independently-
    shaped benchmarks — ``check_bench.py`` self-calibrates on the median
    ratio across the module, which needs more than one data point to have
    teeth.  The ``native`` leg exercises the compiled settle loop at city
    scale (it transparently falls back to pure python where the compiler
    is absent, so the leg always runs).
    """
    server, batches = _build_workload(bench_config, kernel=kernel)
    server.tick()  # initial result computation excluded, as in the paper
    cursor = {"index": 0}
    tick_seconds = []

    def process():
        batch = batches[cursor["index"]]
        cursor["index"] += 1
        started = time.perf_counter()
        server.apply_updates(batch)
        report = server.tick()
        tick_seconds.append(time.perf_counter() - started)
        return report

    try:
        report = benchmark.pedantic(process, rounds=len(batches), iterations=1)
        assert report.timestamp == bench_config.ticks
    finally:
        server.close()

    ordered = sorted(tick_seconds)
    _RESULTS[kernel] = {
        "config": bench_config,
        "edges": server.network.edge_count,
        "tick_seconds": tick_seconds,
        "p50_ms": _percentile(ordered, 0.50) * 1000.0,
        "p95_ms": _percentile(ordered, 0.95) * 1000.0,
        "p99_ms": _percentile(ordered, 0.99) * 1000.0,
    }
    benchmark.extra_info["edges"] = _RESULTS[kernel]["edges"]
    benchmark.extra_info["objects"] = bench_config.num_objects
    benchmark.extra_info["p95_ms"] = round(_RESULTS[kernel]["p95_ms"], 2)


def test_city_scale_sharded_wall_clock(benchmark, bench_config):
    """Opt-in multi-core leg: the same workload on a sharded server.

    Runs only with ``CITY_BENCH_WORKERS=<n>``; on a 1-core container the
    recorded wall figure will honestly show sharding overhead rather than
    speedup, which is exactly the methodology point.
    """
    workers_env = os.environ.get("CITY_BENCH_WORKERS")
    if not workers_env:
        pytest.skip("sharded leg is opt-in: set CITY_BENCH_WORKERS=<n>")
    workers = int(workers_env)
    server, batches = _build_workload(bench_config, workers=workers)
    server.tick()
    cursor = {"index": 0}
    tick_seconds = []

    def process():
        batch = batches[cursor["index"]]
        cursor["index"] += 1
        started = time.perf_counter()
        server.apply_updates(batch)
        report = server.tick()
        tick_seconds.append(time.perf_counter() - started)
        return report

    try:
        benchmark.pedantic(process, rounds=len(batches), iterations=1)
    finally:
        server.close()
    _RESULTS["sharded"] = {
        "workers": workers,
        "mean_tick_seconds": sum(tick_seconds) / len(tick_seconds),
    }


def test_city_scale_summary(bench_config):
    """Emit the BENCH record; enforce the RSS ceiling on the smoke sizing."""
    single = _RESULTS.get("dial")
    if single is None:
        pytest.skip("latency run missing (ran with -k?)")
    mean_tick = sum(single["tick_seconds"]) / len(single["tick_seconds"])
    peak_rss_mb = _peak_rss_mb()
    record = {
        "benchmark": "city_scale_tick",
        "edges": single["edges"],
        "objects": bench_config.num_objects,
        "queries": bench_config.num_queries,
        "k": bench_config.k,
        "kernel": "dial",
        "ticks": bench_config.ticks,
        "cores": os.cpu_count() or 1,
        "mean_tick_ms": round(mean_tick * 1000.0, 2),
        "p50_ms": round(single["p50_ms"], 2),
        "p95_ms": round(single["p95_ms"], 2),
        "p99_ms": round(single["p99_ms"], 2),
        "peak_rss_mb": round(peak_rss_mb, 1),
    }
    csr = _RESULTS.get("csr")
    if csr is not None:
        csr_mean = sum(csr["tick_seconds"]) / len(csr["tick_seconds"])
        record["csr_mean_tick_ms"] = round(csr_mean * 1000.0, 2)
    native = _RESULTS.get("native")
    if native is not None:
        native_mean = sum(native["tick_seconds"]) / len(native["tick_seconds"])
        record["native_mean_tick_ms"] = round(native_mean * 1000.0, 2)
    sharded = _RESULTS.get("sharded")
    if sharded is not None:
        wall_speedup = mean_tick / sharded["mean_tick_seconds"]
        record["workers"] = sharded["workers"]
        record["wall_speedup"] = round(wall_speedup, 2)
    print(f"\nBENCH {json.dumps(record)}")

    # Scale acceptance: the full sizing really is a 100K/100K run.
    if bench_config is FULL_CONFIG:
        assert record["edges"] >= 100_000, record
        assert record["objects"] >= 100_000, record

    if os.environ.get("CITY_BENCH_STRICT", "1") == "0":
        return
    # Memory-bounded: the smoke sizing must stay under a hard ceiling so a
    # memory regression (e.g. an accidental per-object copy of the network)
    # fails CI loudly.  Measured ~90 MB on CPython 3.12; the ceiling leaves
    # ~3x headroom for interpreter variance, not for regressions.
    if bench_config is QUICK_CONFIG:
        ceiling_mb = float(os.environ.get("CITY_BENCH_RSS_MB", "256"))
        assert peak_rss_mb < ceiling_mb, record
    # The sharded wall ratio is asserted only on real multi-core hosts and
    # only on request — see the module docstring.
    if (
        sharded is not None
        and os.environ.get("CITY_BENCH_WALL") == "1"
        and (os.cpu_count() or 1) >= sharded["workers"]
    ):
        assert record["wall_speedup"] >= 1.2, record
