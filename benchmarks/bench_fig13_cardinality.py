"""Figure 13 — CPU time versus object cardinality (a) and query cardinality (b)."""

from __future__ import annotations

def test_fig13a_object_cardinality(benchmark, figure_runner):
    """Figure 13(a): effect of the number of data objects N."""
    figure_runner(benchmark, "fig13a")


def test_fig13b_query_cardinality(benchmark, figure_runner):
    """Figure 13(b): effect of the number of continuous queries Q."""
    figure_runner(benchmark, "fig13b")
