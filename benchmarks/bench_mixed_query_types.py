"""Mixed query-type throughput: kNN + range + aggregate in one stream.

Drives IMA and GMA through the update streams of the query-type presets —
``mixed-fleet`` (all three kinds sharing one stream) and ``geofence-churn``
(range-dominated under heavy object churn) — and reports per-tick
processing time through pytest-benchmark (the standard BENCH JSON uploaded
by CI via ``--benchmark-json``).  A summary BENCH line records the
per-kind query population and updates-per-second so the workload mix is
visible in the trajectory.

Run with ``--quick`` for the CI smoke sizing.
"""

from __future__ import annotations

import json

import pytest

from repro.core.events import apply_batch
from repro.experiments.config import SCALED_DEFAULTS, SMOKE_DEFAULTS
from repro.sim.simulator import Simulator
from repro.testing.scenarios import SCENARIO_PRESETS, ScenarioEngine

PRESETS = ("mixed-fleet", "geofence-churn")

#: Ticks generated per scenario stream (cycled by the benchmark rounds).
STREAM_TICKS = 8


@pytest.fixture(scope="module")
def bench_config(request):
    base = SMOKE_DEFAULTS if request.config.getoption("--quick") else SCALED_DEFAULTS
    return base.with_overrides(timestamps=1)


def _prepared_stream(config, preset, algorithm):
    """A registered monitor plus the preset's (unapplied) update batches.

    The engine's own query mix replaces the simulator's uniform-k queries:
    the stream starts from freshly drawn kNN / range / aggregate specs.
    """
    simulator = Simulator(config)
    spec = SCENARIO_PRESETS[preset].with_overrides(
        num_queries=max(8, config.num_queries)
    )
    # The engine draws its own initial queries from the preset's query mix
    # (adopting the simulator's would make the stream kNN-only); objects
    # adopt the simulator's pre-placed population.
    engine = ScenarioEngine(
        simulator.network,
        spec,
        seed=config.seed + 1,
        initial_objects=simulator.object_locations(),
    )
    monitor = simulator.build_monitors([algorithm])[algorithm]
    for query_id, (location, query_spec) in engine.initial_queries().items():
        monitor.register_query(query_id, location, query_spec)
    return simulator, monitor, engine, list(engine.batches(STREAM_TICKS))


def _kind_histogram(engine):
    """Query-kind -> count over the stream's live queries."""
    histogram = {}
    for _, query_spec in engine.live_queries().values():
        histogram[query_spec.kind] = histogram.get(query_spec.kind, 0) + 1
    return histogram


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("algorithm", ["IMA", "GMA"])
def test_mixed_query_tick_throughput(benchmark, algorithm, preset, bench_config):
    """One preset tick (apply + process) per algorithm over mixed query types."""
    simulator, monitor, engine, batches = _prepared_stream(
        bench_config, preset, algorithm
    )
    total_updates = sum(len(batch) for batch in batches)
    cursor = {"index": 0}

    def process():
        batch = batches[cursor["index"]]
        cursor["index"] += 1
        apply_batch(simulator.network, simulator.edge_table, batch.normalized())
        return monitor.process_batch(batch)

    report = benchmark.pedantic(process, rounds=len(batches), iterations=1)
    assert report.timestamp >= 0
    mean_tick_seconds = benchmark.stats.stats.mean
    kinds = _kind_histogram(engine)
    benchmark.extra_info["scenario"] = preset
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["query_kinds"] = kinds
    benchmark.extra_info["updates_per_tick"] = round(total_updates / len(batches), 1)
    record = {
        "benchmark": "mixed_query_types",
        "scenario": preset,
        "algorithm": algorithm,
        "ticks": len(batches),
        "query_kinds": kinds,
        "mean_tick_ms": round(mean_tick_seconds * 1000.0, 3),
        "updates_per_second": (
            round(total_updates / len(batches) / mean_tick_seconds)
            if mean_tick_seconds > 0
            else None
        ),
    }
    print(f"\nBENCH {json.dumps(record)}")
