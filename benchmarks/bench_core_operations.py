"""Micro-benchmarks of the core operations (not tied to one paper figure).

These track the per-call cost of the operations every experiment is built
from: the one-shot k-NN expansion (Figure 2), one timestamp of each
monitoring algorithm at the scaled default workload, the PMR-quadtree
location step, and the sequence decomposition.
"""

from __future__ import annotations

import random

import pytest

from repro.core.events import apply_batch
from repro.core.search import expand_knn
from repro.experiments.config import SCALED_DEFAULTS
from repro.network.graph import NetworkLocation
from repro.network.sequences import SequenceTable
from repro.sim.simulator import Simulator
from repro.spatial.geometry import Point


@pytest.fixture(scope="module")
def prepared_simulation():
    """One scaled-default scenario shared by the micro-benchmarks."""
    config = SCALED_DEFAULTS.with_overrides(timestamps=1)
    simulator = Simulator(config)
    return simulator, config


def test_initial_knn_search(benchmark, prepared_simulation):
    """One Figure-2 expansion at the default k."""
    simulator, config = prepared_simulation
    rng = random.Random(0)
    edges = list(simulator.network.edge_ids())

    def search():
        location = NetworkLocation(rng.choice(edges), rng.random())
        return expand_knn(
            simulator.network, simulator.edge_table, config.k, query_location=location
        )

    outcome = benchmark(search)
    assert len(outcome.neighbors) == config.k


def test_quadtree_snap(benchmark, prepared_simulation):
    """Snapping raw coordinates to the containing edge via the PMR quadtree."""
    simulator, _ = prepared_simulation
    box = simulator.network.bounding_box()
    rng = random.Random(1)

    def snap():
        point = Point(rng.uniform(box.min_x, box.max_x), rng.uniform(box.min_y, box.max_y))
        return simulator.edge_table.snap_point(point)

    location = benchmark(snap)
    simulator.network.validate_location(location)


def test_sequence_decomposition(benchmark, prepared_simulation):
    """Building the sequence table of the scaled default network."""
    simulator, _ = prepared_simulation
    table = benchmark(lambda: SequenceTable(simulator.network))
    assert table.is_partition()


@pytest.mark.parametrize("algorithm", ["OVH", "IMA", "GMA"])
def test_one_timestamp_processing(benchmark, algorithm):
    """One update batch processed by each algorithm at the scaled defaults."""
    config = SCALED_DEFAULTS.with_overrides(timestamps=1)
    simulator = Simulator(config)
    monitor = simulator.build_monitors([algorithm])[algorithm]
    for query_id, location in simulator.query_locations().items():
        monitor.register_query(query_id, location, config.k)

    batches = []
    for timestamp in range(8):
        batch = simulator.generate_batch(timestamp)
        apply_batch(simulator.network, simulator.edge_table, batch.normalized())
        batches.append(batch)
    cursor = {"index": 0}

    def process():
        batch = batches[cursor["index"] % len(batches)]
        cursor["index"] += 1
        return monitor.process_batch(batch)

    report = benchmark.pedantic(process, rounds=len(batches), iterations=1)
    assert report.timestamp >= 0
