"""Micro-benchmarks of the core operations (not tied to one paper figure).

These track the per-call cost of the operations every experiment is built
from: the one-shot k-NN expansion (Figure 2) on the flat-array CSR kernel
and its speedup over the preserved dict-based legacy implementation, one
timestamp of each monitoring algorithm at the scaled default workload, the
batched server-ingestion path, the PMR-quadtree location step (single and
bulk), and the sequence decomposition.

Run with ``--quick`` (registered in the root conftest) to use the smoke
workload; the whole module then completes in well under a minute, which is
what the CI benchmark-smoke job relies on.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.events import EdgeWeightUpdate, UpdateBatch, apply_batch
from repro.core.ima import ImaMonitor
from repro.core.search import expand_knn
from repro.core.search_legacy import expand_knn_legacy
from repro.experiments.config import SCALED_DEFAULTS, SMOKE_DEFAULTS
from repro.network.graph import NetworkLocation
from repro.network.sequences import SequenceTable
from repro.sim.simulator import Simulator
from repro.spatial.geometry import Point


@pytest.fixture(scope="module")
def bench_config(request):
    """The scaled defaults, or the smoke workload under ``--quick``."""
    base = SMOKE_DEFAULTS if request.config.getoption("--quick") else SCALED_DEFAULTS
    return base.with_overrides(timestamps=1)


@pytest.fixture(scope="module")
def prepared_simulation(bench_config):
    """One shared scenario for the micro-benchmarks."""
    return Simulator(bench_config), bench_config


def test_initial_knn_search(benchmark, prepared_simulation):
    """One Figure-2 expansion at the default k (CSR kernel)."""
    simulator, config = prepared_simulation
    rng = random.Random(0)
    edges = list(simulator.network.edge_ids())

    def search():
        location = NetworkLocation(rng.choice(edges), rng.random())
        return expand_knn(
            simulator.network, simulator.edge_table, config.k, query_location=location
        )

    outcome = benchmark(search)
    assert len(outcome.neighbors) == config.k


def test_expand_knn_kernel_vs_legacy(benchmark, prepared_simulation):
    """CSR kernel vs the dict-based legacy search on identical queries.

    The kernel run is tracked by pytest-benchmark; the legacy run is timed
    explicitly over the same query set and the speedup is recorded in
    ``extra_info`` (and printed), which is the number the PR acceptance
    criterion quotes.
    """
    simulator, config = prepared_simulation
    rng = random.Random(0)
    edges = list(simulator.network.edge_ids())
    queries = [
        NetworkLocation(rng.choice(edges), rng.random()) for _ in range(400)
    ]

    def run(search_fn):
        start = time.perf_counter()
        for location in queries:
            search_fn(
                simulator.network,
                simulator.edge_table,
                config.k,
                query_location=location,
            )
        return time.perf_counter() - start

    # Warm up both paths (CSR snapshot, fraction caches), then best-of-3.
    run(expand_knn)
    run(expand_knn_legacy)
    kernel_seconds = min(run(expand_knn) for _ in range(3))
    legacy_seconds = min(run(expand_knn_legacy) for _ in range(3))
    speedup = legacy_seconds / kernel_seconds

    cursor = {"index": 0}

    def one_kernel_search():
        location = queries[cursor["index"] % len(queries)]
        cursor["index"] += 1
        return expand_knn(
            simulator.network, simulator.edge_table, config.k, query_location=location
        )

    benchmark(one_kernel_search)
    benchmark.extra_info["kernel_seconds_per_search"] = kernel_seconds / len(queries)
    benchmark.extra_info["legacy_seconds_per_search"] = legacy_seconds / len(queries)
    benchmark.extra_info["kernel_speedup"] = round(speedup, 3)
    print(f"\nexpand_knn kernel speedup vs legacy: {speedup:.2f}x")
    # Guard against catastrophic kernel regressions only: wall-clock ratios
    # on shared CI runners are noisy, so the threshold is deliberately loose
    # (the real number is tracked via the uploaded extra_info artifact).
    assert speedup > 0.5


def _resume_heavy_setup(config, kernel, seed=1, ticks=8):
    """An IMA monitor plus pure resume ticks (storms off the query edges).

    Every batch changes the weight of half the edges that do *not* carry a
    query, so affected queries take the incremental resume path
    (`_resume_search` + influence refresh) rather than a full recompute —
    the hot path the CSR port targets.  The batches are *not* applied here:
    the driver applies each one right before the tick that processes it, so
    every timed tick resumes against a genuinely changed network.
    """
    simulator = Simulator(config)
    monitor = ImaMonitor(simulator.network, simulator.edge_table, kernel=kernel)
    for query_id, location in simulator.query_locations().items():
        monitor.register_query(query_id, location, config.k)
    rng = random.Random(seed)
    query_edges = {loc.edge_id for loc in simulator.query_locations().values()}
    free_edges = [e for e in simulator.network.edge_ids() if e not in query_edges]
    weights = {e: simulator.network.edge(e).weight for e in free_edges}
    batches = []
    for timestamp in range(ticks):
        batch = UpdateBatch(timestamp=timestamp)
        for edge_id in rng.sample(free_edges, len(free_edges) // 2):
            weight = weights[edge_id]
            factor = 1.15 if rng.random() < 0.5 else 0.87
            weights[edge_id] = weight * factor
            batch.edge_updates.append(
                EdgeWeightUpdate(edge_id, weight, weight * factor)
            )
        batches.append(batch)
    return simulator, monitor, batches


def test_ima_resume_heavy_kernel_vs_legacy(benchmark, bench_config):
    """Resume-heavy IMA ticks: CSR incremental paths vs the legacy dict paths.

    The kernel run is tracked by pytest-benchmark; the legacy-kernel monitor
    processes the identical stream and the speedup lands in ``extra_info``
    — this is the resume-tick number the PR-2 acceptance criterion quotes
    (target >= 1.5x).  Each batch is applied to the shared state immediately
    before the tick that processes it (apply time excluded from the
    processing measurement).
    """
    config = bench_config.with_overrides(
        num_queries=max(bench_config.num_queries, 200), k=20
    )

    def run(kernel):
        simulator, monitor, batches = _resume_heavy_setup(config, kernel)
        processing = 0.0
        for batch in batches:
            apply_batch(simulator.network, simulator.edge_table, batch.normalized())
            start = time.perf_counter()
            monitor.process_batch(batch)
            processing += time.perf_counter() - start
        return processing

    run("csr")
    run("legacy")
    kernel_seconds = min(run("csr") for _ in range(3))
    legacy_seconds = min(run("legacy") for _ in range(3))
    speedup = legacy_seconds / kernel_seconds

    simulator, monitor, batches = _resume_heavy_setup(config, "csr")
    cursor = {"index": 0}

    def one_tick():
        batch = batches[cursor["index"]]
        cursor["index"] += 1
        apply_batch(simulator.network, simulator.edge_table, batch.normalized())
        return monitor.process_batch(batch)

    benchmark.pedantic(one_tick, rounds=len(batches), iterations=1)
    benchmark.extra_info["kernel_seconds"] = round(kernel_seconds, 4)
    benchmark.extra_info["legacy_seconds"] = round(legacy_seconds, 4)
    benchmark.extra_info["resume_tick_speedup"] = round(speedup, 3)
    print(f"\nIMA resume-heavy tick speedup (csr vs legacy): {speedup:.2f}x")
    # Loose floor: shared CI runners are noisy; the tracked number is the
    # extra_info artifact.
    assert speedup > 0.8


def test_batched_server_ingestion(benchmark, bench_config):
    """One timestamp ingested through apply_updates() + tick()."""
    simulator = Simulator(bench_config)
    server = simulator.make_server("ima")
    server.tick()  # install the queries / initial results
    batches = [simulator.generate_batch(timestamp) for timestamp in range(8)]
    cursor = {"index": 0}

    def ingest():
        batch = batches[cursor["index"] % len(batches)]
        cursor["index"] += 1
        server.apply_updates(batch)
        return server.tick()

    report = benchmark.pedantic(ingest, rounds=len(batches), iterations=1)
    assert report.timestamp >= 0


def test_quadtree_snap(benchmark, prepared_simulation):
    """Snapping raw coordinates to the containing edge via the PMR quadtree."""
    simulator, _ = prepared_simulation
    box = simulator.network.bounding_box()
    rng = random.Random(1)

    def snap():
        point = Point(rng.uniform(box.min_x, box.max_x), rng.uniform(box.min_y, box.max_y))
        return simulator.edge_table.snap_point(point)

    location = benchmark(snap)
    simulator.network.validate_location(location)


def test_quadtree_snap_bulk(benchmark, prepared_simulation):
    """Vectorized snapping of a whole update batch of coordinates."""
    simulator, _ = prepared_simulation
    box = simulator.network.bounding_box()
    rng = random.Random(2)
    points = [
        Point(rng.uniform(box.min_x, box.max_x), rng.uniform(box.min_y, box.max_y))
        for _ in range(512)
    ]

    locations = benchmark(simulator.edge_table.snap_points, points)
    assert len(locations) == len(points)
    for location in locations[:16]:
        simulator.network.validate_location(location)


def test_sequence_decomposition(benchmark, prepared_simulation):
    """Building the sequence table of the benchmark network."""
    simulator, _ = prepared_simulation
    table = benchmark(lambda: SequenceTable(simulator.network))
    assert table.is_partition()


@pytest.mark.parametrize("algorithm", ["OVH", "IMA", "GMA"])
def test_one_timestamp_processing(benchmark, algorithm, bench_config):
    """One update batch processed by each algorithm."""
    simulator = Simulator(bench_config)
    monitor = simulator.build_monitors([algorithm])[algorithm]
    for query_id, location in simulator.query_locations().items():
        monitor.register_query(query_id, location, bench_config.k)

    batches = []
    for timestamp in range(8):
        batch = simulator.generate_batch(timestamp)
        apply_batch(simulator.network, simulator.edge_table, batch.normalized())
        batches.append(batch)
    cursor = {"index": 0}

    def process():
        batch = batches[cursor["index"] % len(batches)]
        cursor["index"] += 1
        return monitor.process_batch(batch)

    report = benchmark.pedantic(process, rounds=len(batches), iterations=1)
    assert report.timestamp >= 0
