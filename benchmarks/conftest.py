"""Shared helpers for the pytest-benchmark harness.

Every figure of the paper's evaluation has a benchmark that (a) runs the
figure's parameter sweep once, printing the same series the paper plots
(run pytest with ``-s`` to see the tables), and (b) reports the sweep's
wall-clock time through pytest-benchmark so regressions are tracked.

The sweeps run on the scaled-down workload documented in
``repro.experiments.config`` (same densities and agilities as the paper, a
~25x smaller network); the mapping from the paper's axis values is printed
with each table and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import get_experiment
from repro.experiments.reporting import format_experiment
from repro.experiments.runner import run_experiment

#: Timestamps per sweep point in the benchmarks (keeps the whole harness
#: under a few minutes; increase for smoother curves).
BENCHMARK_TIMESTAMPS = 2


def run_figure_benchmark(benchmark, experiment_id: str, timestamps: int = BENCHMARK_TIMESTAMPS):
    """Run one figure's sweep under pytest-benchmark and print its table."""
    experiment = get_experiment(experiment_id)

    def sweep():
        return run_experiment(experiment, timestamps=timestamps)

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_experiment(result))
    # Sanity: every point produced a value for every algorithm.
    for row in result.rows:
        for algorithm in experiment.algorithms:
            assert row.metric(algorithm, experiment.metric) >= 0.0
    return result


@pytest.fixture
def figure_runner():
    """Fixture exposing :func:`run_figure_benchmark` to the bench modules."""
    return run_figure_benchmark
