"""Multi-tenant dedup throughput on the clustered popular-venue workload.

Drives the same seeded popular-venue stream — thousands of k-NN tenants
clustered onto venue anchors covering ~1% of the edges — through two IMA
:class:`~repro.core.server.MonitoringServer` instances via the batched
``apply_updates`` + ``tick`` pipeline:

* ``plain`` — every logical query installed as its own physical query
  (dedup off);
* ``dedup`` — the same logical stream behind a
  :class:`~repro.core.dedup.DedupFrontend`, so co-located same-spec
  tenants share one physical query each.

Per-tick wall-clock goes through pytest-benchmark (the standard BENCH JSON
uploaded by CI via ``--benchmark-json``); the summary test prints a
``BENCH`` JSON line with the tick-throughput ratio and the dedup census
(logical vs physical query counts), then enforces the acceptance floor: at
the full sizing (10k clustered tenants) dedup-on ticks must be at least
**2x** faster than dedup-off; the ``--quick`` CI smoke sizing asserts a
lighter 1.5x.  Set ``DEDUP_BENCH_STRICT=0`` to record without asserting
(e.g. on a heavily co-tenanted machine).

Run with ``--quick`` for the CI benchmark-smoke sizing.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.dedup import DedupFrontend
from repro.core.server import MonitoringServer
from repro.network.builders import city_network
from repro.network.edge_table import EdgeTable
from repro.testing.scenarios import SCENARIO_PRESETS, ScenarioEngine

#: Benchmarked ticks per mode.
TICKS = 3

#: One shared stream seed: both modes replay the identical update stream.
SEED = 20060912

#: The acceptance workload: 10k tenants, 95% of placements snapping onto
#: venue anchors spread over 1% of a 6000-edge network.  Movement and
#: churn are kept moderate so a tick is dominated by query maintenance,
#: which is where sharing physical queries pays.
FULL_SPEC = SCENARIO_PRESETS["popular-venue"].with_overrides(
    num_objects=1_000,
    num_queries=10_000,
    k_choices=(2, 4),
    query_mix=(("knn", 1.0),),
    venue_fraction=0.01,
    venue_query_fraction=0.95,
    object_move_fraction=0.05,
    query_move_fraction=0.05,
    edge_storm_fraction=0.02,
    query_churn_prob=0.5,
    timestamps=TICKS,
)
FULL_EDGES = 6_000

#: Sized for the CI benchmark-smoke job (< a few seconds per run).
QUICK_SPEC = FULL_SPEC.with_overrides(num_objects=300, num_queries=1_500)
QUICK_EDGES = 1_200

MODES = ("plain", "dedup")

#: Mean tick seconds (and the dedup census) per mode, for the summary test.
_RESULTS: dict = {}


@pytest.fixture(scope="module")
def bench_setup(request):
    """The (spec, network_edges) pair of the selected sizing."""
    if request.config.getoption("--quick"):
        return QUICK_SPEC, QUICK_EDGES
    return FULL_SPEC, FULL_EDGES


def _prepared_server(spec, edges, dedup):
    """A primed server (initial results computed) plus its update batches."""
    network = city_network(edges, seed=SEED)
    engine = ScenarioEngine(network, spec, seed=SEED)
    edge_table = EdgeTable(network, build_spatial_index=False)
    for object_id, location in engine.initial_objects().items():
        edge_table.insert_object(object_id, location)
    server = MonitoringServer(network, algorithm="ima", edge_table=edge_table)
    if dedup:
        server = DedupFrontend(server)
    for query_id, (location, k) in engine.initial_queries().items():
        server.add_query(query_id, location, k)
    server.tick()  # initial result computation is excluded, as in the paper
    batches = [engine.batch(timestamp) for timestamp in range(TICKS)]
    return server, batches


@pytest.mark.parametrize("mode", MODES)
def test_popular_venue_tick(benchmark, mode, bench_setup):
    """One tick (apply_updates + tick) per round, dedup off vs on."""
    spec, edges = bench_setup
    server, batches = _prepared_server(spec, edges, dedup=(mode == "dedup"))
    cursor = {"index": 0}

    def process():
        batch = batches[cursor["index"]]
        cursor["index"] += 1
        server.apply_updates(batch)
        return server.tick()

    try:
        report = benchmark.pedantic(process, rounds=len(batches), iterations=1)
        assert report.timestamp == TICKS  # initial tick consumed timestamp 0
        stats = server.dedup_stats() if mode == "dedup" else None
    finally:
        server.close()

    mean_tick_seconds = benchmark.stats.stats.mean
    _RESULTS[mode] = {
        "mean_tick_seconds": mean_tick_seconds,
        "logical_queries": stats.logical_queries if stats else spec.num_queries,
        "physical_queries": stats.physical_queries if stats else None,
    }
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["queries"] = spec.num_queries
    if stats is not None:
        benchmark.extra_info["physical_queries"] = stats.physical_queries
        benchmark.extra_info["largest_group"] = stats.largest_group


def test_dedup_speedup_summary(bench_setup):
    """Aggregate the two runs into a speedup figure and enforce the floor."""
    spec, edges = bench_setup
    missing = [mode for mode in MODES if mode not in _RESULTS]
    if missing:
        pytest.skip(f"throughput runs missing for modes={missing} (ran with -k?)")
    plain = _RESULTS["plain"]["mean_tick_seconds"]
    dedup = _RESULTS["dedup"]["mean_tick_seconds"]
    speedup = plain / dedup
    record = {
        "benchmark": "popular_venue_dedup",
        "queries": spec.num_queries,
        "network_edges": edges,
        "venue_fraction": spec.venue_fraction,
        "plain_tick_ms": round(plain * 1000.0, 2),
        "dedup_tick_ms": round(dedup * 1000.0, 2),
        "physical_queries": _RESULTS["dedup"]["physical_queries"],
        "tick_speedup": round(speedup, 2),
    }
    print(f"\nBENCH {json.dumps(record)}")
    if os.environ.get("DEDUP_BENCH_STRICT", "1") == "0":
        return
    if spec is QUICK_SPEC:
        # The smoke sizing keeps the property visible without the full cost.
        assert speedup >= 1.5, record
    else:
        # The acceptance floor: >= 2x tick throughput at 10k clustered
        # tenants (the workload is dominated by shared physical queries, so
        # the ratio is hardware-independent).
        assert speedup >= 2.0, record
