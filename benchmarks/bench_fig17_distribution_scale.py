"""Figure 17 — distribution combinations (a) and network size scaling (b)."""

from __future__ import annotations


def test_fig17a_distribution_combinations(benchmark, figure_runner):
    """Figure 17(a): uniform/Gaussian object and query placement combinations."""
    figure_runner(benchmark, "fig17a")


def test_fig17b_network_size(benchmark, figure_runner):
    """Figure 17(b): scaling with the number of edges at constant densities."""
    figure_runner(benchmark, "fig17b")
