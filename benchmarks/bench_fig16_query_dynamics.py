"""Figure 16 — CPU time versus query agility (a) and query speed (b)."""

from __future__ import annotations


def test_fig16a_query_agility(benchmark, figure_runner):
    """Figure 16(a): effect of the fraction of queries moving per timestamp."""
    figure_runner(benchmark, "fig16a")


def test_fig16b_query_speed(benchmark, figure_runner):
    """Figure 16(b): effect of how far a moving query travels."""
    figure_runner(benchmark, "fig16b")
