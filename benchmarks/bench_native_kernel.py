"""Compiled ``kernel="native"`` settle loop vs the pure-python dial kernel.

The workload is the dial benchmark's resume-heavy storm stream pushed to
the deep end of the paper's parameter space (k=192 of the k<=200 sweep on
a 16K-edge network): expansion trees thousands of nodes deep, where the
per-settle interpreter cost is what separates the engines.  The harness

1. **captures** the exact ``expand_knn_batch`` request batches an IMA
   monitor issues while processing the storm stream on the dial kernel
   (resume-heavy: hundreds of concurrent queries re-expanding against a
   changed network each tick), then
2. **replays** the identical batches through ``dial_expand_batch`` and
   ``native_expand_batch``, interleaved A/B within one process, taking
   per-engine medians over several rounds.

Interleaving matters: on a noisy 1-core runner, consecutive same-engine
runs drift apart by more than the effect under test; alternating engines
round-by-round cancels the drift out of the ratio.  The native replay is
the pytest-benchmark-tracked entry (guarded by ``check_bench.py``); the
speedup lands in ``extra_info`` and the printed ``BENCH`` line.  Full
mode asserts the acceptance floor (median speedup >= 5x over
``kernel="dial"``); ``NATIVE_BENCH_STRICT=0`` records without asserting.
Run with ``--quick`` for the CI smoke sizing (recorded, floor relaxed to
a sanity check — shallow trees leave little interpreter time to delete).
"""

from __future__ import annotations

import json
import os
import statistics
import time

import pytest

from bench_dial_kernel import FULL_CONFIG, QUICK_CONFIG, STORM_FRACTION, TICKS, _storm_setup
from repro.core.events import apply_batch
from repro.network.dial import dial_expand_batch
from repro.network.native import load_outcome_helper, native_available, native_expand_batch
import repro.core.ima as ima_module
import repro.core.search as search_module

#: The acceptance workload: the storm stream at the deep end of the
#: paper's k sweep.  At this depth a settle is ~85% of a dial tick.
NATIVE_FULL_CONFIG = FULL_CONFIG.with_overrides(k=192, network_edges=16_000)

#: CI smoke sizing: same shape, shallow enough to finish in seconds.
NATIVE_QUICK_CONFIG = QUICK_CONFIG.with_overrides(
    num_objects=400, num_queries=80, k=32, network_edges=2_000
)

#: Interleaved A/B rounds per engine (medians over rounds).
ROUNDS_FULL = 7
ROUNDS_QUICK = 3

#: Replay only the substantial tick batches; the per-query trickle calls
#: (initial registrations) measure dispatch overhead, not the settle loop.
MIN_BATCH_REQUESTS = 10


@pytest.fixture(scope="module")
def bench_config(request):
    return (
        NATIVE_QUICK_CONFIG
        if request.config.getoption("--quick")
        else NATIVE_FULL_CONFIG
    )


def _capture_tick_batches(config):
    """The (network, edge_table, requests) of every storm-tick batch call.

    Runs the storm stream once on the dial kernel with
    ``expand_knn_batch`` instrumented, so the replay below times the
    engines on byte-identical, genuinely resume-heavy request streams —
    not on synthetic fresh searches.
    """
    captured = []
    original = search_module.expand_knn_batch

    def recording(network, edge_table, requests, *args, **kwargs):
        requests = list(requests)
        captured.append((network, edge_table, requests))
        return original(network, edge_table, requests, *args, **kwargs)

    simulator, monitor, batches = _storm_setup(config, "dial")
    search_module.expand_knn_batch = recording
    ima_module.expand_knn_batch = recording
    try:
        for batch in batches:
            apply_batch(simulator.network, simulator.edge_table, batch.normalized())
            monitor.process_batch(batch)
    finally:
        search_module.expand_knn_batch = original
        ima_module.expand_knn_batch = original
    ticks = [entry for entry in captured if len(entry[2]) >= MIN_BATCH_REQUESTS]
    assert ticks, "storm stream issued no batch expansions"
    return ticks


def _replay_seconds(engine, tick_batches):
    start = time.perf_counter()
    for network, edge_table, requests in tick_batches:
        engine(network, edge_table, list(requests))
    return time.perf_counter() - start


def test_native_resume_heavy_speedup(benchmark, bench_config):
    """Resume-heavy storm batches: compiled settle loop vs dial replay."""
    if not native_available():
        pytest.skip("compiled native backend unavailable on this machine")
    quick = bench_config is NATIVE_QUICK_CONFIG
    rounds = ROUNDS_QUICK if quick else ROUNDS_FULL
    tick_batches = _capture_tick_batches(bench_config)

    # Warm both engines (library load, column builds, allocator steady state).
    _replay_seconds(dial_expand_batch, tick_batches)
    _replay_seconds(native_expand_batch, tick_batches)

    dial_runs, native_runs = [], []
    for _ in range(rounds):
        native_runs.append(_replay_seconds(native_expand_batch, tick_batches))
        dial_runs.append(_replay_seconds(dial_expand_batch, tick_batches))
    dial_seconds = statistics.median(dial_runs)
    native_seconds = statistics.median(native_runs)
    speedup = dial_seconds / native_seconds

    benchmark.pedantic(
        _replay_seconds, args=(native_expand_batch, tick_batches),
        rounds=3, iterations=1,
    )
    benchmark.extra_info["dial_seconds"] = round(dial_seconds, 4)
    benchmark.extra_info["native_seconds"] = round(native_seconds, 4)
    benchmark.extra_info["native_speedup"] = round(speedup, 3)
    record = {
        "benchmark": "native_kernel_resume_heavy",
        "queries": bench_config.num_queries,
        "k": bench_config.k,
        "network_edges": bench_config.network_edges,
        "storm_fraction": STORM_FRACTION,
        "ticks": TICKS,
        "tick_batches": len(tick_batches),
        "requests": sum(len(requests) for _, _, requests in tick_batches),
        "rounds": rounds,
        "outcome_helper": load_outcome_helper() is not None,
        "dial_ms": round(dial_seconds * 1000.0, 2),
        "native_ms": round(native_seconds * 1000.0, 2),
        "speedup": round(speedup, 3),
    }
    print(f"\nBENCH {json.dumps(record)}")
    if os.environ.get("NATIVE_BENCH_STRICT", "1") == "0":
        return
    if quick:
        # Smoke sizing: shallow trees, little settle work to compile away;
        # just prove the native path is not pathological.
        assert speedup > 1.0, record
    else:
        # The PR acceptance floor on the deep resume-heavy workload.
        assert speedup >= 5.0, record
