"""IMA vs GMA throughput across the scenario-engine stress presets.

Each benchmark drives one monitoring algorithm through the update stream of
a :mod:`repro.testing.scenarios` preset — churn-heavy (objects constantly
appearing / disappearing), weight-storm (a quarter of all edges changing
per tick) and hotspot (movers piling onto a small edge pool) — and reports
per-tick processing time through pytest-benchmark (the standard BENCH JSON
uploaded by CI via ``--benchmark-json``).  Updates-per-second is recorded
in ``extra_info`` for cross-preset comparison.

Run with ``--quick`` for the CI smoke sizing.
"""

from __future__ import annotations

import pytest

from repro.core.events import apply_batch
from repro.experiments.config import SCALED_DEFAULTS, SMOKE_DEFAULTS
from repro.sim.simulator import Simulator

PRESETS = ("churn-heavy", "weight-storm", "hotspot")

#: Ticks generated per scenario stream (cycled by the benchmark rounds).
STREAM_TICKS = 8


@pytest.fixture(scope="module")
def bench_config(request):
    base = SMOKE_DEFAULTS if request.config.getoption("--quick") else SCALED_DEFAULTS
    return base.with_overrides(timestamps=1)


def _prepared_stream(config, preset, algorithm):
    """A registered monitor plus the preset's (unapplied) update batches.

    Each batch is applied to the shared state by the benchmark loop right
    before the tick that processes it, mirroring real per-tick operation.
    """
    simulator = Simulator(config)
    engine = simulator.scenario_engine(preset, seed=config.seed + 1)
    monitor = simulator.build_monitors([algorithm])[algorithm]
    for query_id, (location, k) in engine.initial_queries().items():
        monitor.register_query(query_id, location, k)
    return simulator, monitor, list(engine.batches(STREAM_TICKS))


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("algorithm", ["IMA", "GMA"])
def test_scenario_tick_throughput(benchmark, algorithm, preset, bench_config):
    """One preset tick (apply + process) per algorithm (updates/s in extra_info)."""
    simulator, monitor, batches = _prepared_stream(bench_config, preset, algorithm)
    total_updates = sum(len(batch) for batch in batches)
    cursor = {"index": 0}

    def process():
        batch = batches[cursor["index"]]
        cursor["index"] += 1
        apply_batch(simulator.network, simulator.edge_table, batch.normalized())
        return monitor.process_batch(batch)

    report = benchmark.pedantic(process, rounds=len(batches), iterations=1)
    assert report.timestamp >= 0
    mean_tick_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["scenario"] = preset
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["updates_per_tick"] = round(total_updates / len(batches), 1)
    benchmark.extra_info["updates_per_second"] = (
        round(total_updates / len(batches) / mean_tick_seconds)
        if mean_tick_seconds > 0
        else None
    )
