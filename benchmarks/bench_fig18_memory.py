"""Figure 18 — memory footprint of IMA versus GMA."""

from __future__ import annotations


def test_fig18a_memory_versus_queries(benchmark, figure_runner):
    """Figure 18(a): memory versus query cardinality (IMA above GMA)."""
    figure_runner(benchmark, "fig18a")


def test_fig18b_memory_versus_k(benchmark, figure_runner):
    """Figure 18(b): memory versus k (IMA's trees grow with k)."""
    figure_runner(benchmark, "fig18b")
