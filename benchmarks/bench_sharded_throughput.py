"""Sharded-server tick throughput: 1 worker vs 4 on a 256-query workload.

Drives the same seeded workload — 256 continuous k-NN queries, a deep
network, heavy query movement and edge storms — through a single-process
:class:`~repro.core.server.MonitoringServer` and a sharded one with four
worker processes, via the batched ``apply_updates`` + ``tick`` pipeline.
Per-tick wall-clock goes through pytest-benchmark (the standard BENCH JSON
uploaded by CI via ``--benchmark-json``); the summary test prints a
``BENCH`` JSON line with both speedup figures:

* ``wall_speedup`` — end-to-end tick throughput ratio.  Only meaningful on
  a machine with at least as many idle cores as workers.
* ``cpu_speedup`` — single-process tick *CPU* time over the slowest
  shard's CPU time (:attr:`ShardedMonitoringServer.last_max_shard_cpu_seconds`),
  a like-for-like processor-time ratio immune to core contention.  It is
  the shard-compute critical path — an upper bound on the achievable wall
  speedup, since parent-side normalization and fan-out/merge are not part
  of the shard measurement.

The sharded runs come in two partitioning flavors: ``replica`` (every
worker holds the full network) and ``graph`` (each worker holds one
network region block plus its one-hop halo — see ``docs/sharding.md``).
Both sharded legs also record each worker's peak RSS
(:meth:`ShardedMonitoringServer.worker_peak_rss`), and a dedicated
memory-footprint test sizes the comparison up to a 100K-edge city in full
mode, where per-worker RSS under graph partitioning must land below the
full-replica figure by the documented floor (``rss_ratio <=
SHARDED_BENCH_RSS_FLOOR``, default 0.85).  At the ``--quick`` sizing the
ratio is recorded but not asserted: the Python interpreter's ~20 MB
baseline dominates a 2K-edge network, so the block/halo saving disappears
into noise there — the honest reading of small-network RSS figures is
"no signal", not "no saving".

In full (non ``--quick``) mode the summary asserts the scaling floors:
``cpu_speedup >= 2.0`` for the replica leg and ``>= 1.5`` for the graph
leg (boundary-escalated queries move to the coordinator, so the shard
critical path shrinks but the like-for-like floor is kept slightly
looser), both hardware-independent so CI locks the properties in even on
small or co-tenanted runners.  Set ``SHARDED_BENCH_WALL=1`` on a machine
with dedicated cores to also assert ``wall_speedup >= 1.5``, or
``SHARDED_BENCH_STRICT=0`` to record without asserting at all.

Run with ``--quick`` for the CI smoke sizing.
"""

from __future__ import annotations

import json
import time
import os

import pytest

from repro.core.sharding import ShardedMonitoringServer
from repro.sim.simulator import Simulator
from repro.sim.workload import WorkloadConfig

#: The acceptance workload: 256 queries, expansion-heavy ticks.
FULL_CONFIG = WorkloadConfig(
    num_objects=1_500,
    num_queries=256,
    k=24,
    network_edges=6_000,
    edge_agility=0.15,
    object_agility=0.10,
    query_agility=0.50,
    timestamps=1,
    seed=20060912,
)

#: Sized for the CI benchmark-smoke job (< a few seconds per run).
QUICK_CONFIG = FULL_CONFIG.with_overrides(
    num_objects=600, num_queries=64, k=8, network_edges=1_200
)

#: The benchmarked legs: (workers, partitioning).  workers=1 is the plain
#: in-process server (the speedup numerator); the two 4-worker legs
#: compare full-replica sharding against graph-partitioned sharding.
LEGS = ((1, "replica"), (4, "replica"), (4, "graph"))

#: Benchmarked ticks per configuration.
TICKS = 4

#: Mean tick seconds (and shard CPU / worker RSS) per leg, for the summary.
_RESULTS: dict = {}


@pytest.fixture(scope="module")
def bench_config(request):
    return QUICK_CONFIG if request.config.getoption("--quick") else FULL_CONFIG


def _prepared_server(config, workers, partitioning):
    """A primed server (initial results computed) plus its update batches."""
    simulator = Simulator(config)
    server = simulator.make_server(
        "ima", workers=workers, partitioning=partitioning
    )
    server.tick()  # initial result computation is excluded, as in the paper
    batches = [simulator.generate_batch(timestamp) for timestamp in range(TICKS)]
    return server, batches


@pytest.mark.parametrize(
    "workers,partitioning", LEGS, ids=[f"{w}w-{p}" for w, p in LEGS]
)
def test_sharded_tick_throughput(benchmark, workers, partitioning, bench_config):
    """One tick (apply_updates + tick) per round, single vs sharded."""
    server, batches = _prepared_server(bench_config, workers, partitioning)
    cursor = {"index": 0}
    shard_cpu = []
    tick_cpu = []
    worker_rss = []

    def process():
        batch = batches[cursor["index"]]
        cursor["index"] += 1
        cpu_start = time.process_time()
        server.apply_updates(batch)
        report = server.tick()
        tick_cpu.append(time.process_time() - cpu_start)
        if isinstance(server, ShardedMonitoringServer):
            shard_cpu.append(server.last_max_shard_cpu_seconds)
        return report

    try:
        report = benchmark.pedantic(process, rounds=len(batches), iterations=1)
        assert report.timestamp == TICKS  # initial tick consumed timestamp 0
        if isinstance(server, ShardedMonitoringServer):
            worker_rss = server.worker_peak_rss()
    finally:
        server.close()

    mean_tick_seconds = benchmark.stats.stats.mean
    _RESULTS[(workers, partitioning)] = {
        "mean_tick_seconds": mean_tick_seconds,
        # Parent-process CPU per tick; for workers=1 this is the whole tick's
        # processor time, the like-for-like numerator of cpu_speedup.
        "mean_tick_cpu_seconds": sum(tick_cpu) / len(tick_cpu),
        "mean_max_shard_cpu_seconds": (
            sum(shard_cpu) / len(shard_cpu) if shard_cpu else None
        ),
        "max_worker_rss_mb": (
            round(max(worker_rss) / 2**20, 2) if worker_rss else None
        ),
    }
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["partitioning"] = partitioning
    benchmark.extra_info["queries"] = bench_config.num_queries
    benchmark.extra_info["ticks_per_second"] = (
        round(1.0 / mean_tick_seconds, 2) if mean_tick_seconds > 0 else None
    )
    if shard_cpu:
        benchmark.extra_info["max_shard_cpu_seconds"] = round(
            _RESULTS[(workers, partitioning)]["mean_max_shard_cpu_seconds"], 6
        )
    if worker_rss:
        benchmark.extra_info["max_worker_rss_mb"] = _RESULTS[
            (workers, partitioning)
        ]["max_worker_rss_mb"]


def test_sharded_speedup_summary(bench_config):
    """Aggregate the runs into speedup figures and enforce the floors."""
    missing = [leg for leg in LEGS if leg not in _RESULTS]
    if missing:
        pytest.skip(f"throughput runs missing for legs={missing} (ran with -k?)")
    single = _RESULTS[(1, "replica")]["mean_tick_seconds"]
    single_cpu = _RESULTS[(1, "replica")]["mean_tick_cpu_seconds"]
    replica = _RESULTS[(4, "replica")]
    graph = _RESULTS[(4, "graph")]
    wall_speedup = single / replica["mean_tick_seconds"]
    cpu_speedup = single_cpu / replica["mean_max_shard_cpu_seconds"]
    graph_wall_speedup = single / graph["mean_tick_seconds"]
    graph_cpu_speedup = single_cpu / graph["mean_max_shard_cpu_seconds"]
    cores = os.cpu_count() or 1
    record = {
        "benchmark": "sharded_tick_throughput",
        "queries": bench_config.num_queries,
        "workers": 4,
        "cores": cores,
        "single_tick_ms": round(single * 1000.0, 2),
        "single_tick_cpu_ms": round(single_cpu * 1000.0, 2),
        "sharded_tick_ms": round(replica["mean_tick_seconds"] * 1000.0, 2),
        "max_shard_cpu_ms": round(replica["mean_max_shard_cpu_seconds"] * 1000.0, 2),
        "wall_speedup": round(wall_speedup, 2),
        "cpu_speedup": round(cpu_speedup, 2),
        "graph_tick_ms": round(graph["mean_tick_seconds"] * 1000.0, 2),
        "graph_max_shard_cpu_ms": round(
            graph["mean_max_shard_cpu_seconds"] * 1000.0, 2
        ),
        "graph_wall_speedup": round(graph_wall_speedup, 2),
        "graph_cpu_speedup": round(graph_cpu_speedup, 2),
        # At this sizing the figures are informational (see the module
        # docstring); the asserted RSS comparison lives in
        # test_partitioned_memory_footprint at the 100K-edge sizing.
        "replica_max_worker_rss_mb": replica["max_worker_rss_mb"],
        "graph_max_worker_rss_mb": graph["max_worker_rss_mb"],
    }
    print(f"\nBENCH {json.dumps(record)}")
    if os.environ.get("SHARDED_BENCH_STRICT", "1") == "0":
        return
    if bench_config is QUICK_CONFIG:
        # The smoke sizing is IPC-bound by design; just prove sharding isn't
        # pathological there.
        assert cpu_speedup > 0.5, record
        assert graph_cpu_speedup > 0.3, record
    else:
        # The acceptance floors, hardware-independent so CI locks them in.
        assert cpu_speedup >= 2.0, record
        assert graph_cpu_speedup >= 1.5, record
        if cores >= 4 and os.environ.get("SHARDED_BENCH_WALL") == "1":
            # End-to-end check; opt-in because co-tenanted CI runners can
            # report 4 vCPUs while delivering far less, failing the wall
            # ratio for reasons unrelated to the commit under test.
            assert wall_speedup >= 1.5, record


# ----------------------------------------------------------------------
# memory footprint: block+halo workers vs full-replica workers
# ----------------------------------------------------------------------

#: Full-mode sizing of the memory comparison: the acceptance workload is a
#: 100K-edge city (network build alone takes ~2 minutes; it only runs in
#: the full benchmark job, never in the tier-1 suite).
FULL_RSS_EDGES = 100_000
#: Quick sizing — records the ratio without asserting (interpreter
#: baseline dominates; see the module docstring).
QUICK_RSS_EDGES = 2_000

#: The documented memory floor: a graph-partitioned worker's peak RSS must
#: be at most this fraction of a full-replica worker's on the 100K-edge
#: city.  Each of the 4 workers holds ~1/4 of the nodes plus a one-hop
#: halo instead of the whole network; the measured ratio is ≈0.41
#: (replica ≈327 MB vs graph ≈132 MB per worker), so 0.6 leaves ~50 %
#: headroom for interpreter-baseline drift while still failing long
#: before block extraction could regress to shipping full replicas.
RSS_FLOOR = float(os.environ.get("SHARDED_BENCH_RSS_FLOOR", "0.6"))


def _rss_leg(network, partitioning):
    """Max per-worker peak RSS after priming a 4-worker server.

    Spawned (not forked) workers: under ``fork`` every child inherits the
    parent's full memory image copy-on-write — including the parent's own
    copy of the 100K-edge network — so its resident size reads
    near-identical for both partitioning modes and says nothing about
    worker-owned state.  A spawned worker materializes exactly what was
    shipped to it, which is the quantity the block+halo layout exists to
    shrink.  (The worker reports ``VmHWM``, not ``ru_maxrss`` — the
    latter is per-task accounting that survives ``exec`` on Linux and
    would smuggle the parent's footprint into even a spawned worker's
    figure; see ``repro.core.worker._peak_rss_bytes``.)
    """
    from repro.core.server import MonitoringServer
    from repro.network.graph import NetworkLocation

    server = MonitoringServer(
        network,
        algorithm="ima",
        workers=4,
        partitioning=partitioning,
        start_method="spawn",
    )
    try:
        edge_ids = sorted(network.edge_ids())
        for object_id in range(256):
            server.add_object(
                object_id,
                NetworkLocation(
                    edge_ids[(object_id * 389) % len(edge_ids)], 0.5
                ),
            )
        for index in range(64):
            server.add_query(
                1_000_000 + index,
                NetworkLocation(edge_ids[(index * 1543) % len(edge_ids)], 0.25),
                k=8,
            )
        server.tick()
        return max(server.worker_peak_rss())
    finally:
        server.close()


def test_partitioned_memory_footprint(request):
    """Graph-partitioned workers must peak below full-replica workers.

    The memory-model acceptance check: identical 64-query workloads over
    the same city, once with full-replica workers and once with block+halo
    workers.  Peak RSS (``VmHWM`` of each spawned worker) includes the
    state-shipping spike, which is exactly the cost graph partitioning
    exists to shrink.
    """
    from repro.network.builders import city_network

    quick = request.config.getoption("--quick")
    edges = QUICK_RSS_EDGES if quick else FULL_RSS_EDGES
    network = city_network(edges, seed=20060912)
    replica_rss = _rss_leg(network.copy(), "replica")
    graph_rss = _rss_leg(network.copy(), "graph")
    record = {
        "benchmark": "partitioned_memory_footprint",
        "network_edges": edges,
        "workers": 4,
        "replica_max_worker_rss_mb": round(replica_rss / 2**20, 2),
        "graph_max_worker_rss_mb": round(graph_rss / 2**20, 2),
        "rss_ratio": round(graph_rss / replica_rss, 3) if replica_rss else None,
        "rss_floor": RSS_FLOOR,
    }
    print(f"\nBENCH {json.dumps(record)}")
    if quick or os.environ.get("SHARDED_BENCH_STRICT", "1") == "0":
        return  # recorded only: no signal at small sizings
    assert replica_rss > 0 and graph_rss > 0, record
    assert graph_rss <= replica_rss * RSS_FLOOR, record
