"""Sharded-server tick throughput: 1 worker vs 4 on a 256-query workload.

Drives the same seeded workload — 256 continuous k-NN queries, a deep
network, heavy query movement and edge storms — through a single-process
:class:`~repro.core.server.MonitoringServer` and a sharded one with four
worker processes, via the batched ``apply_updates`` + ``tick`` pipeline.
Per-tick wall-clock goes through pytest-benchmark (the standard BENCH JSON
uploaded by CI via ``--benchmark-json``); the summary test prints a
``BENCH`` JSON line with both speedup figures:

* ``wall_speedup`` — end-to-end tick throughput ratio.  Only meaningful on
  a machine with at least as many idle cores as workers.
* ``cpu_speedup`` — single-process tick *CPU* time over the slowest
  shard's CPU time (:attr:`ShardedMonitoringServer.last_max_shard_cpu_seconds`),
  a like-for-like processor-time ratio immune to core contention.  It is
  the shard-compute critical path — an upper bound on the achievable wall
  speedup, since parent-side normalization and fan-out/merge are not part
  of the shard measurement.

In full (non ``--quick``) mode the summary asserts the scaling floor:
``cpu_speedup >= 2.0`` always (hardware-independent, so CI locks the
property in even on small or co-tenanted runners).  Set
``SHARDED_BENCH_WALL=1`` on a machine with dedicated cores to also assert
``wall_speedup >= 1.5``, or ``SHARDED_BENCH_STRICT=0`` to record without
asserting at all.

Run with ``--quick`` for the CI smoke sizing.
"""

from __future__ import annotations

import json
import time
import os

import pytest

from repro.core.sharding import ShardedMonitoringServer
from repro.sim.simulator import Simulator
from repro.sim.workload import WorkloadConfig

#: The acceptance workload: 256 queries, expansion-heavy ticks.
FULL_CONFIG = WorkloadConfig(
    num_objects=1_500,
    num_queries=256,
    k=24,
    network_edges=6_000,
    edge_agility=0.15,
    object_agility=0.10,
    query_agility=0.50,
    timestamps=1,
    seed=20060912,
)

#: Sized for the CI benchmark-smoke job (< a few seconds per run).
QUICK_CONFIG = FULL_CONFIG.with_overrides(
    num_objects=600, num_queries=64, k=8, network_edges=1_200
)

WORKER_COUNTS = (1, 4)

#: Benchmarked ticks per configuration.
TICKS = 4

#: Mean tick seconds (and shard CPU) per worker count, for the summary test.
_RESULTS: dict = {}


@pytest.fixture(scope="module")
def bench_config(request):
    return QUICK_CONFIG if request.config.getoption("--quick") else FULL_CONFIG


def _prepared_server(config, workers):
    """A primed server (initial results computed) plus its update batches."""
    simulator = Simulator(config)
    server = simulator.make_server("ima", workers=workers)
    server.tick()  # initial result computation is excluded, as in the paper
    batches = [simulator.generate_batch(timestamp) for timestamp in range(TICKS)]
    return server, batches


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_sharded_tick_throughput(benchmark, workers, bench_config):
    """One tick (apply_updates + tick) per round, single vs sharded."""
    server, batches = _prepared_server(bench_config, workers)
    cursor = {"index": 0}
    shard_cpu = []
    tick_cpu = []

    def process():
        batch = batches[cursor["index"]]
        cursor["index"] += 1
        cpu_start = time.process_time()
        server.apply_updates(batch)
        report = server.tick()
        tick_cpu.append(time.process_time() - cpu_start)
        if isinstance(server, ShardedMonitoringServer):
            shard_cpu.append(server.last_max_shard_cpu_seconds)
        return report

    try:
        report = benchmark.pedantic(process, rounds=len(batches), iterations=1)
        assert report.timestamp == TICKS  # initial tick consumed timestamp 0
    finally:
        server.close()

    mean_tick_seconds = benchmark.stats.stats.mean
    _RESULTS[workers] = {
        "mean_tick_seconds": mean_tick_seconds,
        # Parent-process CPU per tick; for workers=1 this is the whole tick's
        # processor time, the like-for-like numerator of cpu_speedup.
        "mean_tick_cpu_seconds": sum(tick_cpu) / len(tick_cpu),
        "mean_max_shard_cpu_seconds": (
            sum(shard_cpu) / len(shard_cpu) if shard_cpu else None
        ),
    }
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["queries"] = bench_config.num_queries
    benchmark.extra_info["ticks_per_second"] = (
        round(1.0 / mean_tick_seconds, 2) if mean_tick_seconds > 0 else None
    )
    if shard_cpu:
        benchmark.extra_info["max_shard_cpu_seconds"] = round(
            _RESULTS[workers]["mean_max_shard_cpu_seconds"], 6
        )


def test_sharded_speedup_summary(bench_config):
    """Aggregate the two runs into speedup figures and enforce the floor."""
    missing = [workers for workers in WORKER_COUNTS if workers not in _RESULTS]
    if missing:
        pytest.skip(f"throughput runs missing for workers={missing} (ran with -k?)")
    single = _RESULTS[1]["mean_tick_seconds"]
    single_cpu = _RESULTS[1]["mean_tick_cpu_seconds"]
    sharded = _RESULTS[max(WORKER_COUNTS)]
    wall_speedup = single / sharded["mean_tick_seconds"]
    cpu_speedup = single_cpu / sharded["mean_max_shard_cpu_seconds"]
    cores = os.cpu_count() or 1
    record = {
        "benchmark": "sharded_tick_throughput",
        "queries": bench_config.num_queries,
        "workers": max(WORKER_COUNTS),
        "cores": cores,
        "single_tick_ms": round(single * 1000.0, 2),
        "single_tick_cpu_ms": round(single_cpu * 1000.0, 2),
        "sharded_tick_ms": round(sharded["mean_tick_seconds"] * 1000.0, 2),
        "max_shard_cpu_ms": round(sharded["mean_max_shard_cpu_seconds"] * 1000.0, 2),
        "wall_speedup": round(wall_speedup, 2),
        "cpu_speedup": round(cpu_speedup, 2),
    }
    print(f"\nBENCH {json.dumps(record)}")
    if os.environ.get("SHARDED_BENCH_STRICT", "1") == "0":
        return
    if bench_config is QUICK_CONFIG:
        # The smoke sizing is IPC-bound by design; just prove sharding isn't
        # pathological there.
        assert cpu_speedup > 0.5, record
    else:
        # The acceptance floor, hardware-independent so CI locks it in.
        assert cpu_speedup >= 2.0, record
        if cores >= max(WORKER_COUNTS) and os.environ.get("SHARDED_BENCH_WALL") == "1":
            # End-to-end check; opt-in because co-tenanted CI runners can
            # report 4 vCPUs while delivering far less, failing the wall
            # ratio for reasons unrelated to the commit under test.
            assert wall_speedup >= 1.5, record
