"""Figure 14 — CPU time versus k (a) and edge agility (b)."""

from __future__ import annotations


def test_fig14a_number_of_neighbors(benchmark, figure_runner):
    """Figure 14(a): effect of k, including the k = 1 crossover where IMA wins."""
    figure_runner(benchmark, "fig14a")


def test_fig14b_edge_agility(benchmark, figure_runner):
    """Figure 14(b): effect of the fraction of edges updated per timestamp."""
    figure_runner(benchmark, "fig14b")
