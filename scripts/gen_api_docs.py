#!/usr/bin/env python3
"""Generate docs/api.md from the docstrings of the public API.

Walks every symbol exported from :mod:`repro` (the package ``__all__``),
captures its signature and docstring, and renders one markdown page grouped
by subsystem.  Stdlib-only, so the reference can be rebuilt anywhere the
package imports.

Usage::

    python scripts/gen_api_docs.py           # rewrite docs/api.md
    python scripts/gen_api_docs.py --check   # fail if docs/api.md is stale

The ``--check`` form runs in CI (the docs-build job) so the committed page
can never drift from the docstrings.
"""

from __future__ import annotations

import inspect
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402  (path set up above)

OUTPUT = REPO_ROOT / "docs" / "api.md"

#: Page structure: (section title, blurb, exported names).
SECTIONS = (
    (
        "Servers and sharding",
        "The user-facing entry points: the monitoring server facade, its "
        "multi-process sharded variant, the query-to-shard router, and the "
        "multi-tenant dedup layer that wraps either server.",
        (
            "MonitoringServer",
            "ShardedMonitoringServer",
            "shard_of",
            "DedupFrontend",
            "DedupStats",
        ),
    ),
    (
        "Monitoring algorithms",
        "The paper's three algorithms behind one abstract interface, plus "
        "the per-tick report they produce.",
        (
            "MonitorBase",
            "OvhMonitor",
            "ImaMonitor",
            "GmaMonitor",
            "TimestepReport",
            "KnnResult",
            "ALGORITHMS",
        ),
    ),
    (
        "Query types",
        "The QuerySpec abstraction behind every `k` parameter: classic "
        "k-NN, fixed-radius range monitoring, and aggregate k-NN over "
        "several points, plus the normalization helper.",
        (
            "QuerySpec",
            "knn",
            "range_query",
            "aggregate_knn",
            "as_query_spec",
            "evaluate_aggregates",
        ),
    ),
    (
        "Updates and events",
        "The three update streams of Section 3 and the batch container "
        "with its Section 4.5 normalization.",
        (
            "UpdateBatch",
            "ObjectUpdate",
            "QueryUpdate",
            "EdgeWeightUpdate",
            "apply_batch",
            "encode_batch",
            "decode_batch",
        ),
    ),
    (
        "Durable streaming service",
        "The always-on front-end: a socket service with watch-mode delta "
        "pushes, write-ahead event logging with checkpoint/replay crash "
        "recovery, snapshot/restore of whole servers, and the kill -9 "
        "fault-injection driver that proves recovery is byte-identical.",
        (
            "StreamingService",
            "ServiceClient",
            "DurableMonitoringServer",
            "EventLog",
            "read_event_log",
            "load_initial_state",
            "restore_server",
            "run_fault_injection",
        ),
    ),
    (
        "Search kernels",
        "The Figure-2 network expansion over the flat-array CSR snapshot, "
        "the batched bucket-queue (dial) and compiled (native) entry "
        "points, the legacy dict-based twin, the kernel registry that "
        "names and validates all of them, and the work counters they "
        "report.",
        (
            "expand_knn",
            "expand_knn_batch",
            "ExpansionRequest",
            "expand_knn_legacy",
            "SearchCounters",
            "KernelSpec",
            "registered_kernels",
            "available_kernels",
            "resolve_kernel",
            "native_available",
            "UnknownKernelError",
        ),
    ),
    (
        "Road network substrate",
        "Graph model, CSR snapshot (including the shared-memory transport "
        "used by the sharded server), edge table, builders and distances.",
        (
            "RoadNetwork",
            "NetworkLocation",
            "EdgeTable",
            "CSRGraph",
            "csr_snapshot",
            "SharedCSR",
            "SharedCSRHandle",
            "attach_shared_csr",
            "SequenceTable",
            "city_network",
            "grid_network",
            "linear_network",
            "network_distance",
            "brute_force_knn",
            "brute_force_range",
            "brute_force_aggregate_knn",
            "load_network",
            "save_network",
            "CLOSED_EDGE_WEIGHT",
        ),
    ),
    (
        "City-scale realism",
        "The OSM-style nodes/ways importer (largest-component extraction, "
        "parallel-edge dedup, speed-class weights), the deterministic "
        "synthetic-city generator that feeds it, and the rush-hour traffic "
        "model behind the `rush-hour` / `gridlock-closures` presets.",
        (
            "import_road_network",
            "import_ways_text",
            "ImportResult",
            "ImportStats",
            "CitySpec",
            "synthetic_city_text",
            "synthetic_city_network",
            "RushHourSpec",
            "RushHourModel",
            "classify_edges",
        ),
    ),
    (
        "Spatial primitives",
        "Geometry types and the PMR quadtree that snaps raw coordinates "
        "onto network edges.",
        ("Point", "Rect", "Segment", "PMRQuadtree"),
    ),
    (
        "Testing and verification",
        "The brute-force oracle, the scenario fuzz engine, and the "
        "oracle-backed differential harness.",
        (
            "OracleMonitor",
            "ScenarioEngine",
            "ScenarioSpec",
            "SCENARIO_PRESETS",
            "run_differential_scenario",
            "run_differential_log",
        ),
    ),
    (
        "Errors",
        "Every library exception derives from one root type.",
        ("ReproError",),
    ),
)


def _signature(obj) -> str:
    """A display signature, or '' for data exports."""
    try:
        if inspect.isclass(obj):
            # Go straight to __init__: a custom __new__ (e.g. the workers
            # dispatch on MonitoringServer) would otherwise hide the real
            # constructor parameters behind *args/**kwargs.
            init_signature = inspect.signature(obj.__init__)
            parameters = list(init_signature.parameters.values())[1:]  # drop self
            return str(init_signature.replace(parameters=parameters))
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return ""


def _render_symbol(name: str) -> str:
    obj = getattr(repro, name)
    lines = [f"### `{name}`", ""]
    if inspect.isclass(obj):
        lines.append(f"*class* — defined in `{obj.__module__}`")
    elif inspect.isfunction(obj):
        lines.append(f"*function* — defined in `{obj.__module__}`")
    else:
        lines.append(f"*data* — `{type(obj).__name__}`")
    lines.append("")
    signature = _signature(obj)
    if signature:
        lines.extend(["```python", f"{name}{signature}", "```", ""])
    doc = inspect.getdoc(obj) if (inspect.isclass(obj) or inspect.isfunction(obj)) else None
    if doc:
        # Docstrings use Sphinx roles and literal blocks; fencing them keeps
        # the markdown renderer from mangling anything.
        lines.extend(["```text", doc, "```", ""])
    return "\n".join(lines)


def build_page() -> str:
    """Render the whole API reference page."""
    exported = set(repro.__all__)
    covered = {name for _, _, names in SECTIONS for name in names}
    missing = sorted(exported - covered - {"__version__"})
    if missing:
        raise SystemExit(
            f"gen_api_docs.py: exports missing from SECTIONS: {missing} "
            "(add them so the reference stays complete)"
        )
    parts = [
        "# API reference",
        "",
        "Auto-generated from the package docstrings by "
        "`scripts/gen_api_docs.py`; do not edit by hand — run "
        "`python scripts/gen_api_docs.py` to refresh. Every symbol below is "
        "importable straight from `repro`.",
        "",
    ]
    for title, blurb, names in SECTIONS:
        parts.extend([f"## {title}", "", blurb, ""])
        for name in names:
            parts.append(_render_symbol(name))
    return "\n".join(parts).rstrip() + "\n"


def main(argv) -> int:
    """CLI entry point; see the module docstring."""
    page = build_page()
    if "--check" in argv:
        on_disk = OUTPUT.read_text(encoding="utf-8") if OUTPUT.exists() else ""
        if on_disk != page:
            sys.stderr.write(
                "docs/api.md is stale; run `python scripts/gen_api_docs.py`\n"
            )
            return 1
        print("docs/api.md is up to date")
        return 0
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(page, encoding="utf-8")
    print(f"wrote {OUTPUT} ({len(page.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
