#!/usr/bin/env python
"""Diff a fresh pytest-benchmark run against the committed baseline.

Usage::

    python -m pytest benchmarks/bench_core_operations.py ... --quick -q \
        --benchmark-json=benchmark-results.json
    python scripts/check_bench.py benchmark-results.json            # gate
    python scripts/check_bench.py benchmark-results.json --update   # refresh

The baseline (``BENCH_baseline.json`` at the repo root) stores the median
seconds of every benchmark in the CI smoke set.  Because absolute timings
differ wildly across machines, the gate is *self-calibrating*: it first
estimates a machine-speed factor as the median of ``current / baseline``
over all shared benchmarks, then fails any benchmark whose current median
exceeds its calibrated baseline by more than ``--tolerance`` (default 30%,
per-benchmark).  A uniform slowdown of the whole suite is absorbed by the
calibration — the gate catches *relative* regressions, which is the signal
that survives runner heterogeneity.  Sub-millisecond baselines get twice
the tolerance (their medians jitter more than the calibration can cancel).

On both pass and fail the gate renders a per-benchmark markdown diff table
— to stdout, and appended to ``$GITHUB_STEP_SUMMARY`` when that variable
is set (the GitHub Actions job summary), so a regression is diagnosable
from the run page without downloading artifacts.

Baseline-refresh procedure (run on any machine; calibration makes the
absolute scale irrelevant):

1. run the same pytest command the CI ``benchmark-smoke`` job runs, with
   ``--benchmark-json=benchmark-results.json``;
2. ``python scripts/check_bench.py benchmark-results.json --update``;
3. commit the rewritten ``BENCH_baseline.json`` together with the change
   that legitimately moved the numbers, and say so in the PR.

Exit status: 0 when every benchmark is within tolerance (improvements are
reported but never fail), 1 on any regression or set mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_baseline.json"

#: Baselines faster than this many seconds get doubled tolerance: their
#: medians carry more scheduler jitter than calibration can cancel.
SMALL_BENCH_SECONDS = 1e-3


def load_medians(results_path: pathlib.Path) -> dict:
    """Map benchmark fullname -> median seconds from a pytest-benchmark JSON."""
    data = json.loads(results_path.read_text(encoding="utf-8"))
    medians = {}
    for bench in data.get("benchmarks", []):
        medians[bench["fullname"]] = float(bench["stats"]["median"])
    return medians


def write_baseline(baseline_path: pathlib.Path, medians: dict, source: str) -> None:
    """Rewrite the committed baseline from a fresh results file."""
    payload = {
        "meta": {
            "source": source,
            "note": (
                "median seconds per benchmark; compared self-calibrated "
                "(see scripts/check_bench.py)"
            ),
        },
        "benchmarks": {name: {"median": median} for name, median in sorted(medians.items())},
    }
    baseline_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def compare(medians: dict, baseline: dict, tolerance: float):
    """Diff *medians* against the baseline.

    Returns ``(failures, factor, rows)``: the number of failing
    benchmarks, the machine calibration factor (``None`` when the runs
    share no benchmarks), and one row dict per benchmark —
    ``{"name", "current_ms", "calibrated_ms", "delta", "verdict"}`` with
    the timing fields ``None`` for missing/extra entries.
    """
    base_medians = {
        name: float(entry["median"]) for name, entry in baseline["benchmarks"].items()
    }
    shared = sorted(set(medians) & set(base_medians))
    missing = sorted(set(base_medians) - set(medians))
    extra = sorted(set(medians) - set(base_medians))
    rows = []
    failures = 0

    if not shared:
        return 1, None, rows
    factor = statistics.median(medians[name] / base_medians[name] for name in shared)

    for name in shared:
        allowed = tolerance * (2.0 if base_medians[name] < SMALL_BENCH_SECONDS else 1.0)
        calibrated = base_medians[name] * factor
        ratio = medians[name] / calibrated
        if ratio > 1.0 + allowed:
            failures += 1
            verdict = f"FAIL (> +{allowed:.0%})"
        elif ratio < 1.0 - allowed:
            verdict = "improved (consider --update)"
        else:
            verdict = "ok"
        rows.append(
            {
                "name": name,
                "current_ms": medians[name] * 1e3,
                "calibrated_ms": calibrated * 1e3,
                "delta": ratio - 1.0,
                "verdict": verdict,
            }
        )

    for name in missing:
        failures += 1
        rows.append(
            {
                "name": name,
                "current_ms": None,
                "calibrated_ms": float(base_medians[name]) * 1e3,
                "delta": None,
                "verdict": "FAIL missing from this run (baseline stale? run --update)",
            }
        )
    for name in extra:
        rows.append(
            {
                "name": name,
                "current_ms": medians[name] * 1e3,
                "calibrated_ms": None,
                "delta": None,
                "verdict": "new benchmark, not in baseline (run --update to adopt)",
            }
        )
    return failures, factor, rows


def _cell(value, fmt: str) -> str:
    """Format an optional numeric table cell."""
    return format(value, fmt) if value is not None else "—"


def render_markdown(factor, rows, failures: int, tolerance: float, baseline_name: str) -> str:
    """The per-benchmark diff as a GitHub-flavored markdown table."""
    status = "PASS" if failures == 0 else f"FAIL ({failures} benchmark(s))"
    lines = [
        f"### Benchmark gate: {status}",
        "",
        f"Self-calibrated against `{baseline_name}` "
        f"(machine factor {_cell(factor, '.3f')}, tolerance ±{tolerance:.0%} "
        f"per benchmark, doubled below {SMALL_BENCH_SECONDS * 1e3:g} ms).",
        "",
        "| benchmark | current (ms) | calibrated baseline (ms) | delta | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    for row in rows:
        delta = f"{row['delta']:+.1%}" if row["delta"] is not None else "—"
        lines.append(
            f"| `{row['name']}` | {_cell(row['current_ms'], '.3f')} "
            f"| {_cell(row['calibrated_ms'], '.3f')} | {delta} | {row['verdict']} |"
        )
    if not rows:
        lines.append("| *(no benchmarks in common with the baseline)* | — | — | — | FAIL |")
    return "\n".join(lines)


def emit_report(markdown: str) -> None:
    """Print the markdown report and mirror it to the CI job summary."""
    print(markdown)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(markdown + "\n")


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=pathlib.Path, help="pytest-benchmark JSON output")
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed per-benchmark regression over the calibrated baseline",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this results file instead of checking",
    )
    args = parser.parse_args(argv)

    medians = load_medians(args.results)
    if not medians:
        print(f"FAIL: no benchmarks found in {args.results}")
        return 1
    if args.update:
        write_baseline(args.baseline, medians, source=str(args.results))
        print(f"baseline rewritten: {args.baseline} ({len(medians)} benchmarks)")
        return 0
    if not args.baseline.exists():
        print(f"FAIL: baseline {args.baseline} missing; create it with --update")
        return 1
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    failures, factor, rows = compare(medians, baseline, args.tolerance)
    emit_report(render_markdown(factor, rows, failures, args.tolerance, args.baseline.name))
    if failures:
        print(
            f"{failures} benchmark(s) regressed beyond tolerance; if the change "
            "is intended, refresh the baseline with --update and commit it"
        )
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
