#!/usr/bin/env python
"""Diff a fresh pytest-benchmark run against the committed baseline.

Usage::

    python -m pytest benchmarks/bench_core_operations.py ... --quick -q \
        --benchmark-json=benchmark-results.json
    python scripts/check_bench.py benchmark-results.json            # gate
    python scripts/check_bench.py benchmark-results.json --update   # refresh

The baseline (``BENCH_baseline.json`` at the repo root) stores the median
seconds of every benchmark in the CI smoke set.  Because absolute timings
differ wildly across machines, the gate is *self-calibrating*: it first
estimates a machine-speed factor as the median of ``current / baseline``
over all shared benchmarks, then fails any benchmark whose current median
exceeds its calibrated baseline by more than ``--tolerance`` (default 30%,
per-benchmark).  A uniform slowdown of the whole suite is absorbed by the
calibration — the gate catches *relative* regressions, which is the signal
that survives runner heterogeneity.  Sub-millisecond baselines get twice
the tolerance (their medians jitter more than the calibration can cancel).

Baseline-refresh procedure (run on any machine; calibration makes the
absolute scale irrelevant):

1. run the same pytest command the CI ``benchmark-smoke`` job runs, with
   ``--benchmark-json=benchmark-results.json``;
2. ``python scripts/check_bench.py benchmark-results.json --update``;
3. commit the rewritten ``BENCH_baseline.json`` together with the change
   that legitimately moved the numbers, and say so in the PR.

Exit status: 0 when every benchmark is within tolerance (improvements are
reported but never fail), 1 on any regression or set mismatch.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_baseline.json"

#: Baselines faster than this many seconds get doubled tolerance: their
#: medians carry more scheduler jitter than calibration can cancel.
SMALL_BENCH_SECONDS = 1e-3


def load_medians(results_path: pathlib.Path) -> dict:
    """Map benchmark fullname -> median seconds from a pytest-benchmark JSON."""
    data = json.loads(results_path.read_text(encoding="utf-8"))
    medians = {}
    for bench in data.get("benchmarks", []):
        medians[bench["fullname"]] = float(bench["stats"]["median"])
    return medians


def write_baseline(baseline_path: pathlib.Path, medians: dict, source: str) -> None:
    """Rewrite the committed baseline from a fresh results file."""
    payload = {
        "meta": {
            "source": source,
            "note": (
                "median seconds per benchmark; compared self-calibrated "
                "(see scripts/check_bench.py)"
            ),
        },
        "benchmarks": {name: {"median": median} for name, median in sorted(medians.items())},
    }
    baseline_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def check(medians: dict, baseline: dict, tolerance: float) -> int:
    """Compare and report; returns the number of failures."""
    base_medians = {
        name: float(entry["median"]) for name, entry in baseline["benchmarks"].items()
    }
    shared = sorted(set(medians) & set(base_medians))
    missing = sorted(set(base_medians) - set(medians))
    extra = sorted(set(medians) - set(base_medians))
    failures = 0

    if not shared:
        print("FAIL: no benchmarks in common with the baseline")
        return 1
    factor = statistics.median(medians[name] / base_medians[name] for name in shared)
    print(f"machine calibration factor: {factor:.3f} ({len(shared)} shared benchmarks)")

    for name in shared:
        allowed = tolerance * (2.0 if base_medians[name] < SMALL_BENCH_SECONDS else 1.0)
        calibrated = base_medians[name] * factor
        ratio = medians[name] / calibrated
        if ratio > 1.0 + allowed:
            failures += 1
            verdict = f"FAIL (> +{allowed:.0%})"
        elif ratio < 1.0 - allowed:
            verdict = "improved (consider --update)"
        else:
            verdict = "ok"
        print(
            f"  {name}: {medians[name] * 1e3:.3f} ms vs calibrated baseline "
            f"{calibrated * 1e3:.3f} ms ({ratio - 1.0:+.1%}) {verdict}"
        )

    for name in missing:
        failures += 1
        print(f"  {name}: FAIL missing from this run (baseline stale? run --update)")
    for name in extra:
        print(f"  {name}: new benchmark, not in baseline (run --update to adopt)")
    return failures


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=pathlib.Path, help="pytest-benchmark JSON output")
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed per-benchmark regression over the calibrated baseline",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this results file instead of checking",
    )
    args = parser.parse_args(argv)

    medians = load_medians(args.results)
    if not medians:
        print(f"FAIL: no benchmarks found in {args.results}")
        return 1
    if args.update:
        write_baseline(args.baseline, medians, source=str(args.results))
        print(f"baseline rewritten: {args.baseline} ({len(medians)} benchmarks)")
        return 0
    if not args.baseline.exists():
        print(f"FAIL: baseline {args.baseline} missing; create it with --update")
        return 1
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    failures = check(medians, baseline, args.tolerance)
    if failures:
        print(
            f"{failures} benchmark(s) regressed beyond tolerance; if the change "
            "is intended, refresh the baseline with --update and commit it"
        )
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
